#ifndef ADJ_OPTIMIZER_EXPLAIN_H_
#define ADJ_OPTIMIZER_EXPLAIN_H_

#include <string>

#include "optimizer/adj_optimizer.h"
#include "optimizer/query_plan.h"

namespace adj::optimizer {

/// Human-readable plan explanation: the hypertree, the traversal with
/// per-node pre-compute decisions and estimated sizes, the derived
/// attribute order, and the per-position costE breakdown — the paper's
/// Sec. III walked-through example, generated for any query.
///
/// Written for EXPLAIN-style tooling (adj_cli --explain and the
/// social_recommendation example).
std::string ExplainPlan(const PlanningInputs& in, const QueryPlan& plan);

}  // namespace adj::optimizer

#endif  // ADJ_OPTIMIZER_EXPLAIN_H_
