#ifndef ADJ_OPTIMIZER_COST_MODEL_H_
#define ADJ_OPTIMIZER_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dist/cluster.h"
#include "query/attribute_order.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace adj::optimizer {

/// The cost model of Sec. III-B. Communication is priced by the
/// cluster's NetworkModel (the generalization of the paper's measured
/// constant alpha); computation is priced by extension rates:
///   beta_precomputed — partial-binding extensions/s when the node
///     being extended is a pre-computed (materialized, trie-indexed)
///     relation; pre-measured by probing a calibration trie,
///   beta_raw — extensions/s otherwise; re-fitted from the statistics
///     gathered during sampling of each test case ("we set beta_i by
///     reusing statistics gathered during sampling").
struct CostModel {
  dist::NetworkModel net;
  int num_servers = 4;
  double beta_precomputed = 4e6;
  double beta_raw = 1e6;

  /// Average tuple payload used to convert tuple-copy estimates to
  /// bytes for the network model.
  double bytes_per_tuple = 12.0;

  /// costC-style term: modeled seconds to shuffle `tuple_copies`.
  double CommSeconds(double tuple_copies) const;

  /// costE^i: seconds to extend `bindings` partial bindings at a node,
  /// split across the servers.
  double ExtendSeconds(double bindings, bool node_precomputed) const;
};

/// Measures beta_precomputed by timing seeks on a synthetic
/// calibration trie of roughly `trie_tuples` tuples (the paper
/// pre-measures beta on tries of various sizes). The calibration
/// index is resolved through a process-wide IndexCache, so repeated
/// calibrations at one size share a single build.
double CalibrateBetaPrecomputed(uint64_t trie_tuples = 1 << 16);

/// Same measurement, but probing the catalog's own data: seeks run
/// against the cached index of the query's largest atom *under
/// exactly the bind key the sampler used* (`order`'s ranks), so
/// calibration reuses — and at worst warms — an artifact the planning
/// pass itself binds, instead of building a throwaway trie. Falls
/// back to the synthetic calibration when the query binds no
/// non-empty relation. The measured rate is memoized per probed trie
/// (it is a hardware constant), so repeated planning passes pay only
/// the cache lookup.
double CalibrateBetaPrecomputed(const storage::Catalog& db,
                                const query::Query& q,
                                const query::AttributeOrder& order);

}  // namespace adj::optimizer

#endif  // ADJ_OPTIMIZER_COST_MODEL_H_
