#ifndef ADJ_OPTIMIZER_ADJ_OPTIMIZER_H_
#define ADJ_OPTIMIZER_ADJ_OPTIMIZER_H_

#include <functional>
#include <vector>

#include "common/status.h"
#include "dist/cluster.h"
#include "ghd/decomposition.h"
#include "optimizer/cost_model.h"
#include "optimizer/query_plan.h"
#include "query/query.h"

namespace adj::optimizer {

/// Everything the plan search needs. Cardinality knowledge is
/// injected through callbacks so the optimizer can be driven by the
/// distributed sampler (production), the exact oracle (tests), or the
/// sketch estimator (ablation).
struct PlanningInputs {
  const query::Query* q = nullptr;
  const ghd::Decomposition* decomp = nullptr;
  CostModel cost_model;
  dist::ClusterConfig cluster;
  std::vector<uint64_t> atom_tuples;  // per atom, bound relation sizes

  /// Estimated number of partial bindings over an attribute set —
  /// |T_{v_i}| of Sec. III-B (the size of the join of the atoms whose
  /// schema falls inside the mask).
  std::function<double(AttrMask)> estimate_bindings;
  /// Estimated |R_v| for bag v.
  std::function<double(int)> estimate_bag_size;
  /// Estimated |val(A)| (fallback within-bag order heuristic).
  std::function<double(AttrId)> estimate_distinct;
  /// Optional scorer for complete attribute orders (lower is better);
  /// when set, DeriveOrder picks the best-scoring order consistent
  /// with the traversal instead of the distinct-count heuristic. The
  /// engine wires this to the sketch-based prefix-bindings score —
  /// the same scorer the comm-first baseline uses over *all* orders,
  /// restricted here to valid orders (Fig. 8's Valid-Selected).
  std::function<double(const query::AttributeOrder&)> order_score;
};

/// Estimated cost of a fully specified configuration (which bags are
/// pre-computed + bag traversal order), per the Sec. III-B model.
struct PlanCost {
  double pre = 0.0;
  double comm = 0.0;
  double comp = 0.0;
  double total() const { return pre + comm + comp; }
};
PlanCost EvaluatePlan(const PlanningInputs& in,
                      const std::vector<bool>& precompute,
                      const std::vector<int>& traversal);

/// Alg. 2: greedy reverse construction of the traversal order,
/// deciding per step whether the chosen bag is worth pre-computing.
/// O(n*^2) cost evaluations instead of the naive O(2^n* n*!).
StatusOr<QueryPlan> OptimizeAdaptivePlan(const PlanningInputs& in);

/// Exhaustive oracle over every (pre-compute subset, traversal order)
/// pair. Exponential; used in tests and the optimizer-quality
/// ablation bench.
StatusOr<QueryPlan> OptimizeExhaustivePlan(const PlanningInputs& in);

/// Derives the attribute order induced by a bag traversal: fresh
/// attributes bag by bag, each group ordered by ascending estimated
/// distinct count (fewest candidate values first, following [11]).
query::AttributeOrder DeriveOrder(const PlanningInputs& in,
                                  const std::vector<int>& traversal);

}  // namespace adj::optimizer

#endif  // ADJ_OPTIMIZER_ADJ_OPTIMIZER_H_
