#include "optimizer/cost_model.h"

#include <algorithm>

#include "common/rng.h"
#include "common/timer.h"
#include "dataset/generators.h"
#include "storage/trie.h"

namespace adj::optimizer {

double CostModel::CommSeconds(double tuple_copies) const {
  const uint64_t bytes =
      static_cast<uint64_t>(tuple_copies * bytes_per_tuple);
  // Block-grouped (Pull) pricing: one block per relation-server pair is
  // a lower-order term; approximate with a small fixed block count.
  const uint64_t blocks = uint64_t(num_servers) * 8;
  return dist::PullSeconds(net, blocks, bytes, num_servers);
}

double CostModel::ExtendSeconds(double bindings,
                                bool node_precomputed) const {
  const double beta = node_precomputed ? beta_precomputed : beta_raw;
  return bindings / (beta * double(std::max(1, num_servers)));
}

double CalibrateBetaPrecomputed(uint64_t trie_tuples) {
  // Build a skewed calibration trie and measure the seek rate — the
  // dominant per-extension cost when the node is materialized.
  Rng rng(0xC0FFEE);
  storage::Relation rel =
      dataset::ZipfGraph(std::max<uint64_t>(trie_tuples / 8, 64),
                         trie_tuples, 0.8, rng);
  storage::Trie trie = storage::Trie::Build(rel);
  const uint64_t probes = 200000;
  WallTimer timer;
  uint64_t sink = 0;
  const storage::Trie::Range root = trie.RootRange();
  for (uint64_t i = 0; i < probes; ++i) {
    Value v = static_cast<Value>(rng.Next32());
    uint32_t idx = trie.SeekInRange(0, root, v % (root.hi + 1));
    sink += idx;
  }
  double seconds = timer.Seconds();
  if (seconds <= 0) seconds = 1e-9;
  // Keep the compiler from eliding the loop.
  if (sink == 0xFFFFFFFFFFFFFFFFull) return 1.0;
  return double(probes) / seconds;
}

}  // namespace adj::optimizer
