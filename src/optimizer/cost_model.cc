#include "optimizer/cost_model.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>

#include "common/rng.h"
#include "common/timer.h"
#include "dataset/generators.h"
#include "storage/index_cache.h"
#include "storage/trie.h"
#include "wcoj/leapfrog.h"

namespace adj::optimizer {
namespace {

/// Times `probes` galloping seeks against the root level of `trie`
/// and returns the measured rate (seeks/s).
double MeasureSeekRate(const storage::Trie& trie, uint64_t probes) {
  Rng rng(0xC0FFEE);
  WallTimer timer;
  uint64_t sink = 0;
  const storage::Trie::Range root = trie.RootRange();
  for (uint64_t i = 0; i < probes; ++i) {
    Value v = static_cast<Value>(rng.Next32());
    uint32_t idx = trie.SeekInRange(0, root, v % (root.hi + 1));
    sink += idx;
  }
  double seconds = timer.Seconds();
  if (seconds <= 0) seconds = 1e-9;
  // Keep the compiler from eliding the loop.
  if (sink == 0xFFFFFFFFFFFFFFFFull) return 1.0;
  return double(probes) / seconds;
}

/// The identity column order of `rel` — the bind the executors request
/// for an ascending-attribute atom, i.e. the index calibration should
/// warm.
std::vector<int> IdentityPerm(const storage::Relation& rel) {
  std::vector<int> perm(size_t(rel.arity()));
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = int(i);
  return perm;
}

}  // namespace

double CostModel::CommSeconds(double tuple_copies) const {
  const uint64_t bytes =
      static_cast<uint64_t>(tuple_copies * bytes_per_tuple);
  // Block-grouped (Pull) pricing: one block per relation-server pair is
  // a lower-order term; approximate with a small fixed block count.
  const uint64_t blocks = uint64_t(num_servers) * 8;
  return dist::PullSeconds(net, blocks, bytes, num_servers);
}

double CostModel::ExtendSeconds(double bindings,
                                bool node_precomputed) const {
  const double beta = node_precomputed ? beta_precomputed : beta_raw;
  return bindings / (beta * double(std::max(1, num_servers)));
}

double CalibrateBetaPrecomputed(uint64_t trie_tuples) {
  // A skewed calibration relation, indexed through a process-wide
  // IndexCache: repeated calibrations at one size (every Plan of a
  // catalog with no data falls back here) reuse one build instead of
  // constructing a throwaway trie each time.
  static std::mutex mu;
  static storage::IndexCache cache;
  static std::map<uint64_t, std::shared_ptr<const storage::Relation>> bases;
  std::shared_ptr<const storage::Relation> base;
  {
    std::lock_guard<std::mutex> lock(mu);
    std::shared_ptr<const storage::Relation>& slot = bases[trie_tuples];
    if (slot == nullptr) {
      Rng rng(0xC0FFEE);
      slot = std::make_shared<const storage::Relation>(
          dataset::ZipfGraph(std::max<uint64_t>(trie_tuples / 8, 64),
                             trie_tuples, 0.8, rng));
    }
    base = slot;
  }
  StatusOr<std::shared_ptr<const storage::PreparedIndex>> index =
      cache.GetPermuted(base, base->schema(), IdentityPerm(*base));
  if (!index.ok()) return 1.0;
  return MeasureSeekRate(*(*index)->trie, 200000);
}

double CalibrateBetaPrecomputed(const storage::Catalog& db,
                                const query::Query& q,
                                const query::AttributeOrder& order) {
  // Probe an index the planning pass itself binds: the query's largest
  // atom under `order`'s ranks — the exact cache key the sampler's
  // PrepareRelationShared just requested, so this is a pure hit (or at
  // worst a warm-up) and never builds an index the query won't touch.
  const query::Atom* largest_atom = nullptr;
  std::shared_ptr<const storage::Relation> largest;
  for (const query::Atom& atom : q.atoms()) {
    StatusOr<std::shared_ptr<const storage::Relation>> rel =
        db.GetShared(atom.relation);
    if (!rel.ok() || (*rel)->empty() || (*rel)->arity() == 0) continue;
    if (largest == nullptr || (*rel)->size() > largest->size()) {
      largest = std::move(*rel);
      largest_atom = &atom;
    }
  }
  if (largest == nullptr || order.empty()) {
    return CalibrateBetaPrecomputed();
  }
  StatusOr<wcoj::SharedPreparedRelation> bound = wcoj::PrepareRelationShared(
      std::move(largest), largest_atom->schema.attrs(),
      query::RankOf(order, q.num_attrs()), db.index_cache());
  if (!bound.ok()) return CalibrateBetaPrecomputed();
  StatusOr<std::shared_ptr<const storage::PreparedIndex>> index =
      std::move(bound->index);

  // The rate is a hardware constant: memoize per probed trie so only
  // the first planning pass against a dataset pays the 50k seeks.
  // (Keyed by trie address — after an eviction a recycled address can
  // at worst return another trie's measurement, which is still a valid
  // seek-rate sample. The map is cleared before it can grow past a
  // few hundred doubles.)
  static std::mutex mu;
  static std::map<const void*, double>* memo =
      new std::map<const void*, double>();
  const void* key = (*index)->trie.get();
  {
    std::lock_guard<std::mutex> lock(mu);
    auto it = memo->find(key);
    if (it != memo->end()) return it->second;
  }
  const double rate = MeasureSeekRate(*(*index)->trie, 50000);
  std::lock_guard<std::mutex> lock(mu);
  if (memo->size() >= 256) memo->clear();
  (*memo)[key] = rate;
  return rate;
}

}  // namespace adj::optimizer
