#include "optimizer/explain.h"

#include <cstdio>

namespace adj::optimizer {

std::string ExplainPlan(const PlanningInputs& in, const QueryPlan& plan) {
  const query::Query& q = *in.q;
  const ghd::Decomposition& d = plan.decomp;
  std::string out;
  char line[256];

  out += "=== ADJ plan ===\n";
  out += "query: " + q.ToString() + "\n";
  out += "hypertree: " + d.ToString(q) + "\n";

  out += "traversal:\n";
  AttrMask prev = 0;
  for (size_t i = 0; i < plan.traversal.size(); ++i) {
    const int v = plan.traversal[i];
    const ghd::Bag& bag = d.bags[size_t(v)];
    std::string atoms;
    for (int a = 0; a < q.num_atoms(); ++a) {
      if (bag.atoms & (AtomMask(1) << a)) {
        if (!atoms.empty()) atoms += " ";
        atoms += q.atom(a).relation + q.atom(a).schema.ToString();
      }
    }
    const double est_size =
        in.estimate_bag_size ? in.estimate_bag_size(v) : 0.0;
    const double bindings =
        (prev != 0 && in.estimate_bindings)
            ? in.estimate_bindings(prev)
            : 1.0;
    std::snprintf(line, sizeof(line),
                  "  %zu. v%d %s{%s} rho=%.2f est|R_v|=%.3g "
                  "est|T_prev|=%.3g\n",
                  i + 1, v, plan.precompute[size_t(v)] ? "[PRECOMPUTE] " : "",
                  atoms.c_str(), bag.rho, est_size, bindings);
    out += line;
    prev |= bag.attrs;
  }

  out += "attribute order: " + query::OrderToString(plan.order, q) + "\n";
  std::snprintf(line, sizeof(line),
                "estimated cost: pre=%.4fs comm=%.4fs comp=%.4fs "
                "total=%.4fs\n",
                plan.est_precompute_s, plan.est_comm_s, plan.est_comp_s,
                plan.EstTotal());
  out += line;
  return out;
}

}  // namespace adj::optimizer
