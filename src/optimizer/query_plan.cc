#include "optimizer/query_plan.h"

#include <cstdio>

namespace adj::optimizer {

std::string QueryPlan::ToString(const query::Query& q) const {
  std::string out = "plan{traversal=[";
  for (size_t i = 0; i < traversal.size(); ++i) {
    if (i > 0) out += ",";
    out += "v" + std::to_string(traversal[i]);
    if (precompute[size_t(traversal[i])]) out += "*";
  }
  out += "], ord=" + query::OrderToString(order, q);
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                ", est pre=%.3f comm=%.3f comp=%.3f total=%.3f}",
                est_precompute_s, est_comm_s, est_comp_s, EstTotal());
  out += buf;
  return out;
}

}  // namespace adj::optimizer
