#include "optimizer/share_optimizer.h"

#include <algorithm>
#include <functional>
#include <limits>

namespace adj::optimizer {

double ShareCost(const std::vector<ShareInput>& rels,
                 const dist::ShareVector& p, int num_servers) {
  double cost = 0.0;
  for (const ShareInput& rel : rels) {
    const uint64_t dup = dist::DupCubes(rel.schema, p);
    // More cubes than servers collapse onto the same server, so a
    // tuple is shipped to at most N distinct destinations.
    const double copies =
        double(rel.tuples) *
        double(std::min<uint64_t>(dup, uint64_t(num_servers)));
    cost += copies;
  }
  return cost;
}

StatusOr<dist::ShareVector> OptimizeShares(
    const std::vector<ShareInput>& rels, int num_attrs,
    const dist::ClusterConfig& cluster, const ShareOptimizerOptions& options) {
  if (num_attrs <= 0) return Status::InvalidArgument("no attributes");
  const uint64_t n_servers = uint64_t(cluster.num_servers);
  const uint64_t cap = options.max_cubes_factor * n_servers;

  dist::ShareVector best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool best_feasible = false;
  dist::ShareVector cur;
  cur.p.assign(num_attrs, 1);

  std::function<void(int, uint64_t)> rec = [&](int attr, uint64_t product) {
    if (attr == num_attrs) {
      if (product < n_servers) return;  // not enough cubes to use servers
      // Memory constraint: average resident bytes per server.
      double resident = 0.0;
      for (const ShareInput& rel : rels) {
        resident += double(rel.bytes) * dist::ServerFraction(rel.schema, cur);
      }
      const bool feasible =
          resident <= double(cluster.memory_per_server_bytes);
      const double cost = ShareCost(rels, cur, cluster.num_servers);
      // Prefer feasible; among equals take lower cost, then fewer cubes.
      const bool better =
          (feasible && !best_feasible) ||
          (feasible == best_feasible &&
           (cost < best_cost - 1e-9 ||
            (cost < best_cost + 1e-9 && !best.p.empty() &&
             cur.NumCubes() < best.NumCubes())));
      if (best.p.empty() || better) {
        best = cur;
        best_cost = cost;
        best_feasible = feasible;
      }
      return;
    }
    for (uint64_t share = 1; share <= n_servers; ++share) {
      if (product * share > cap) break;
      cur.p[attr] = static_cast<uint32_t>(share);
      rec(attr + 1, product * share);
    }
    cur.p[attr] = 1;
  };
  rec(0, 1);

  if (best.p.empty()) {
    // Degenerate: fewer cube combinations than servers (tiny N or
    // single attribute). Fall back to all shares on the first
    // attribute, capped at N.
    best.p.assign(num_attrs, 1);
    best.p[0] = static_cast<uint32_t>(
        std::min<uint64_t>(n_servers, cap == 0 ? 1 : cap));
  }
  return best;
}

}  // namespace adj::optimizer
