#include <limits>

#include "common/logging.h"
#include "optimizer/adj_optimizer.h"

namespace adj::optimizer {

StatusOr<QueryPlan> OptimizeExhaustivePlan(const PlanningInputs& in) {
  ADJ_CHECK(in.q != nullptr && in.decomp != nullptr);
  const ghd::Decomposition& d = *in.decomp;
  const int k = d.num_bags();
  if (k > 16) {
    return Status::InvalidArgument(
        "exhaustive planner supports <= 16 bags");
  }

  // Pre-compute decisions only make sense on multi-atom bags.
  std::vector<int> multi;
  for (int v = 0; v < k; ++v) {
    if (!d.bags[size_t(v)].IsSingleAtom()) multi.push_back(v);
  }
  const std::vector<std::vector<int>> traversals = ghd::TraversalOrders(d);

  double best_total = std::numeric_limits<double>::infinity();
  QueryPlan best;
  bool found = false;
  for (uint32_t subset = 0; subset < (1u << multi.size()); ++subset) {
    std::vector<bool> pre(k, false);
    for (size_t j = 0; j < multi.size(); ++j) {
      if (subset & (1u << j)) pre[size_t(multi[j])] = true;
    }
    for (const std::vector<int>& traversal : traversals) {
      const PlanCost cost = EvaluatePlan(in, pre, traversal);
      if (cost.total() < best_total) {
        best_total = cost.total();
        best.decomp = d;
        best.precompute = pre;
        best.traversal = traversal;
        best.est_precompute_s = cost.pre;
        best.est_comm_s = cost.comm;
        best.est_comp_s = cost.comp;
        found = true;
      }
    }
  }
  if (!found) return Status::Internal("no plan found");
  best.order = DeriveOrder(in, best.traversal);
  return best;
}

}  // namespace adj::optimizer
