#include "optimizer/adj_optimizer.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "optimizer/share_optimizer.h"

namespace adj::optimizer {
namespace {

/// True if a bag behaves like a materialized relation during
/// Leapfrog: either pre-computed, or a single original atom (which is
/// already stored and trie-indexed).
bool NodeFast(const ghd::Decomposition& d, const std::vector<bool>& pre,
              int v) {
  return pre[size_t(v)] || d.bags[size_t(v)].IsSingleAtom();
}

/// ShareInputs of the candidate query determined by the pre-compute
/// set: pre-computed bags contribute one estimated relation; all other
/// atoms ship as-is.
std::vector<ShareInput> CandidateRelations(const PlanningInputs& in,
                                           const std::vector<bool>& pre) {
  const ghd::Decomposition& d = *in.decomp;
  std::vector<ShareInput> rels;
  AtomMask covered = 0;
  for (int v = 0; v < d.num_bags(); ++v) {
    if (!pre[size_t(v)] || d.bags[size_t(v)].IsSingleAtom()) continue;
    covered |= d.bags[size_t(v)].atoms;
    ShareInput rel;
    rel.schema = d.bags[size_t(v)].attrs;
    rel.tuples = static_cast<uint64_t>(
        std::max(1.0, in.estimate_bag_size(v)));
    rel.bytes = rel.tuples *
                uint64_t(PopCount(rel.schema)) * sizeof(Value);
    rels.push_back(rel);
  }
  for (int a = 0; a < in.q->num_atoms(); ++a) {
    if (covered & (AtomMask(1) << a)) continue;
    ShareInput rel;
    rel.schema = in.q->atom(a).schema.Mask();
    rel.tuples = in.atom_tuples[size_t(a)];
    rel.bytes = rel.tuples * uint64_t(in.q->atom(a).schema.arity()) *
                sizeof(Value);
    rels.push_back(rel);
  }
  return rels;
}

/// costC(C): modeled seconds to HCube-shuffle the candidate query's
/// relations under their optimal shares.
double CostC(const PlanningInputs& in, const std::vector<bool>& pre) {
  std::vector<ShareInput> rels = CandidateRelations(in, pre);
  StatusOr<dist::ShareVector> share =
      OptimizeShares(rels, in.q->num_attrs(), in.cluster);
  if (!share.ok()) return std::numeric_limits<double>::infinity();
  const double copies = ShareCost(rels, *share, in.cluster.num_servers);
  return in.cost_model.CommSeconds(copies);
}

/// costM(v): modeled pre-computing cost of bag v — shuffling lambda(v)
/// for its own sub-join plus producing its output at the raw rate.
double CostM(const PlanningInputs& in, int v) {
  const ghd::Bag& bag = in.decomp->bags[size_t(v)];
  if (bag.IsSingleAtom()) return 0.0;
  std::vector<ShareInput> rels;
  for (int a = 0; a < in.q->num_atoms(); ++a) {
    if ((bag.atoms & (AtomMask(1) << a)) == 0) continue;
    ShareInput rel;
    rel.schema = in.q->atom(a).schema.Mask();
    rel.tuples = in.atom_tuples[size_t(a)];
    rel.bytes = rel.tuples * uint64_t(in.q->atom(a).schema.arity()) *
                sizeof(Value);
    rels.push_back(rel);
  }
  StatusOr<dist::ShareVector> share =
      OptimizeShares(rels, in.q->num_attrs(), in.cluster);
  double comm = std::numeric_limits<double>::infinity();
  if (share.ok()) {
    comm = in.cost_model.CommSeconds(
        ShareCost(rels, *share, in.cluster.num_servers));
  }
  const double out_size = std::max(1.0, in.estimate_bag_size(v));
  return comm + in.cost_model.ExtendSeconds(out_size, false);
}

/// costE^i for the node at traversal position i (0-based): the cost of
/// extending through every fresh attribute the node contributes.
/// Leapfrog pays per *attribute level*, and inside a multi-attribute
/// node the partial bindings can explode between its levels (this is
/// where comm-first melts down on Q4–Q6), so we sum the per-level
/// entering binding counts |T(prev ∪ first j fresh attrs)|. A node
/// contributing no fresh attribute adds no level and costs nothing.
double CostE(const PlanningInputs& in, const std::vector<bool>& pre,
             AttrMask prev_attrs, int v) {
  const AttrMask fresh = in.decomp->bags[size_t(v)].attrs & ~prev_attrs;
  if (fresh == 0) return 0.0;
  const bool fast = NodeFast(*in.decomp, pre, v);
  // Canonical within-node order for costing: ascending estimated
  // distinct count (DeriveOrder's fallback heuristic).
  std::vector<AttrId> attrs;
  for (int a = 0; a < in.q->num_attrs(); ++a) {
    if (fresh & (AttrMask(1) << a)) attrs.push_back(a);
  }
  std::stable_sort(attrs.begin(), attrs.end(), [&](AttrId x, AttrId y) {
    return in.estimate_distinct(x) < in.estimate_distinct(y);
  });
  double cost = 0.0;
  AttrMask mask = prev_attrs;
  for (AttrId a : attrs) {
    const double bindings =
        mask == 0 ? 1.0 : std::max(1.0, in.estimate_bindings(mask));
    cost += in.cost_model.ExtendSeconds(bindings, fast);
    mask |= (AttrMask(1) << a);
  }
  return cost;
}

/// True if the bags in `mask` form a connected subtree of the join
/// tree (Alg. 2 line 6's validity condition on the remaining nodes).
bool BagsConnected(const ghd::Decomposition& d, uint32_t mask) {
  if (mask == 0) return true;
  const int k = d.num_bags();
  uint32_t visited = 1u << LowestBit(mask);
  bool grew = true;
  while (grew) {
    grew = false;
    for (int v = 0; v < k; ++v) {
      const uint32_t bit = 1u << v;
      if ((mask & bit) == 0 || (visited & bit) != 0) continue;
      for (int u : d.Neighbors(v)) {
        if (visited & (1u << u)) {
          visited |= bit;
          grew = true;
          break;
        }
      }
    }
  }
  return visited == (mask & visited) && visited == mask;
}

}  // namespace

PlanCost EvaluatePlan(const PlanningInputs& in,
                      const std::vector<bool>& precompute,
                      const std::vector<int>& traversal) {
  PlanCost cost;
  cost.comm = CostC(in, precompute);
  for (int v = 0; v < in.decomp->num_bags(); ++v) {
    if (precompute[size_t(v)]) cost.pre += CostM(in, v);
  }
  AttrMask prev = 0;
  for (size_t i = 0; i < traversal.size(); ++i) {
    const int v = traversal[i];
    cost.comp += CostE(in, precompute, prev, v);
    prev |= in.decomp->bags[size_t(v)].attrs;
  }
  return cost;
}

query::AttributeOrder DeriveOrder(const PlanningInputs& in,
                                  const std::vector<int>& traversal) {
  // Fresh attribute groups per traversed bag.
  std::vector<std::vector<AttrId>> groups;
  AttrMask seen = 0;
  for (int v : traversal) {
    const AttrMask fresh = in.decomp->bags[size_t(v)].attrs & ~seen;
    seen |= in.decomp->bags[size_t(v)].attrs;
    std::vector<AttrId> group;
    for (int a = 0; a < in.q->num_attrs(); ++a) {
      if (fresh & (AttrMask(1) << a)) group.push_back(a);
    }
    if (!group.empty()) groups.push_back(std::move(group));
  }

  if (!in.order_score) {
    // Fallback heuristic: within each bag, fewest candidate values
    // first.
    query::AttributeOrder order;
    for (std::vector<AttrId>& group : groups) {
      std::stable_sort(group.begin(), group.end(), [&](AttrId x, AttrId y) {
        return in.estimate_distinct(x) < in.estimate_distinct(y);
      });
      order.insert(order.end(), group.begin(), group.end());
    }
    return order;
  }

  // Scored selection: enumerate every order consistent with the
  // traversal (cartesian product of within-group permutations; the
  // paper's queries have tiny groups) and keep the best-scoring one.
  std::vector<query::AttributeOrder> candidates{{}};
  for (std::vector<AttrId>& group : groups) {
    std::vector<query::AttributeOrder> next;
    std::sort(group.begin(), group.end());
    do {
      for (const query::AttributeOrder& prefix : candidates) {
        query::AttributeOrder order = prefix;
        order.insert(order.end(), group.begin(), group.end());
        next.push_back(std::move(order));
      }
    } while (std::next_permutation(group.begin(), group.end()));
    candidates = std::move(next);
  }
  double best_score = std::numeric_limits<double>::infinity();
  query::AttributeOrder best = candidates.front();
  for (const query::AttributeOrder& order : candidates) {
    const double score = in.order_score(order);
    if (score < best_score) {
      best_score = score;
      best = order;
    }
  }
  return best;
}

StatusOr<QueryPlan> OptimizeAdaptivePlan(const PlanningInputs& in) {
  ADJ_CHECK(in.q != nullptr && in.decomp != nullptr);
  const ghd::Decomposition& d = *in.decomp;
  const int k = d.num_bags();
  if (k > 31) return Status::InvalidArgument("too many bags");

  std::vector<bool> pre(k, false);
  std::vector<int> reverse_order;  // built back to front (Alg. 2)
  uint32_t remaining = (k == 32) ? ~0u : ((1u << k) - 1);

  while (remaining != 0) {
    double best_cost = std::numeric_limits<double>::infinity();
    int best_v = -1;
    bool best_pre = false;

    for (int v = 0; v < k; ++v) {
      const uint32_t bit = 1u << v;
      if ((remaining & bit) == 0) continue;
      const uint32_t rest = remaining & ~bit;
      // Line 6: the nodes still to be placed (which traverse *before*
      // v) must remain connected, otherwise no valid traversal exists.
      if (!BagsConnected(d, rest)) continue;

      AttrMask prev_attrs = 0;
      for (int u = 0; u < k; ++u) {
        if (rest & (1u << u)) prev_attrs |= d.bags[size_t(u)].attrs;
      }

      // Not pre-computing v.
      {
        std::vector<bool> c = pre;
        const double cost = CostC(in, c) + CostE(in, c, prev_attrs, v);
        if (cost < best_cost) {
          best_cost = cost;
          best_v = v;
          best_pre = false;
        }
      }
      // Pre-computing v (never for single-atom bags).
      if (!d.bags[size_t(v)].IsSingleAtom()) {
        std::vector<bool> c = pre;
        c[size_t(v)] = true;
        const double cost =
            CostM(in, v) + CostC(in, c) + CostE(in, c, prev_attrs, v);
        if (cost < best_cost) {
          best_cost = cost;
          best_v = v;
          best_pre = true;
        }
      }
    }
    if (best_v < 0) {
      return Status::Internal("Alg.2 found no extensible node");
    }
    pre[size_t(best_v)] = best_pre;
    reverse_order.push_back(best_v);
    remaining &= ~(1u << best_v);
  }

  QueryPlan plan;
  plan.decomp = d;
  plan.precompute = pre;
  plan.traversal.assign(reverse_order.rbegin(), reverse_order.rend());
  plan.order = DeriveOrder(in, plan.traversal);
  const PlanCost cost = EvaluatePlan(in, plan.precompute, plan.traversal);
  plan.est_precompute_s = cost.pre;
  plan.est_comm_s = cost.comm;
  plan.est_comp_s = cost.comp;
  return plan;
}

}  // namespace adj::optimizer
