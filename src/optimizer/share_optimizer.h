#ifndef ADJ_OPTIMIZER_SHARE_OPTIMIZER_H_
#define ADJ_OPTIMIZER_SHARE_OPTIMIZER_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "dist/cluster.h"
#include "dist/hcube.h"

namespace adj::optimizer {

/// Relation summary for share optimization.
struct ShareInput {
  AttrMask schema = 0;
  uint64_t tuples = 0;
  uint64_t bytes = 0;
};

struct ShareOptimizerOptions {
  /// Total hypercube coordinates may exceed the server count by this
  /// factor ("P can be larger than N*", Sec. II-A).
  uint64_t max_cubes_factor = 4;
};

/// Solves the paper's share-optimization program (Eq. 3): find the
/// integer share vector p minimizing the shuffled volume
///   sum_R |R| * dup(R, p)
/// subject to p >= 1, enough cubes for every server, and the average
/// per-server resident set fitting in memory
///   sum_R bytes(R) * frac(R, p) <= M.
/// Exhaustive search over integer vectors with prod(p) <= factor * N —
/// tractable for the paper's <= 5-attribute queries.
StatusOr<dist::ShareVector> OptimizeShares(
    const std::vector<ShareInput>& rels, int num_attrs,
    const dist::ClusterConfig& cluster,
    const ShareOptimizerOptions& options = {});

/// The objective value (estimated tuple copies) of a share vector.
double ShareCost(const std::vector<ShareInput>& rels,
                 const dist::ShareVector& p, int num_servers);

}  // namespace adj::optimizer

#endif  // ADJ_OPTIMIZER_SHARE_OPTIMIZER_H_
