#ifndef ADJ_OPTIMIZER_QUERY_PLAN_H_
#define ADJ_OPTIMIZER_QUERY_PLAN_H_

#include <string>
#include <vector>

#include "ghd/decomposition.h"
#include "query/attribute_order.h"
#include "query/query.h"

namespace adj::optimizer {

/// The (Qi, ord) pair of the paper's problem statement: which
/// candidate relations (GHD bags) to pre-compute, in which traversal
/// order the bags are expanded, and the induced attribute order.
struct QueryPlan {
  ghd::Decomposition decomp;
  std::vector<int> traversal;     // bag ids in forward traversal order
  std::vector<bool> precompute;   // per bag, aligned with decomp.bags
  query::AttributeOrder order;

  // Predicted cost breakdown (seconds under the cost model).
  double est_precompute_s = 0.0;
  double est_comm_s = 0.0;
  double est_comp_s = 0.0;
  double EstTotal() const {
    return est_precompute_s + est_comm_s + est_comp_s;
  }

  bool AnyPrecompute() const {
    for (bool b : precompute) {
      if (b) return true;
    }
    return false;
  }

  std::string ToString(const query::Query& q) const;
};

}  // namespace adj::optimizer

#endif  // ADJ_OPTIMIZER_QUERY_PLAN_H_
