#ifndef ADJ_QUERY_ATTRIBUTE_ORDER_H_
#define ADJ_QUERY_ATTRIBUTE_ORDER_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "query/query.h"

namespace adj::query {

/// A total order over a query's attributes ("ord" in the paper):
/// order[i] is the attribute expanded at Leapfrog depth i.
using AttributeOrder = std::vector<AttrId>;

/// rank[attr] = position of attr in `order`. Attributes not in the
/// order get rank -1.
std::vector<int> RankOf(const AttributeOrder& order, int num_attrs);

/// All n! permutations of the attributes in `attrs` (as a mask).
/// Used by the Fig. 8 ablation, which exhaustively scores every order;
/// callers should keep n small (the paper's queries have n <= 5).
std::vector<AttributeOrder> AllOrders(AttrMask attrs);

/// Renders "a ≺ b ≺ c" style.
std::string OrderToString(const AttributeOrder& order, const Query& q);

}  // namespace adj::query

#endif  // ADJ_QUERY_ATTRIBUTE_ORDER_H_
