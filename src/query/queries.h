#ifndef ADJ_QUERY_QUERIES_H_
#define ADJ_QUERY_QUERIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "query/query.h"

namespace adj::query {

/// The paper's benchmark queries (Fig. 7). Q1–Q6 are spelled out in
/// Sec. VII-A and reproduced verbatim. Q7–Q11 appear only as pictures;
/// they are the "easy" 3–5 node patterns the paper omits from the
/// evaluation, reconstructed here as representative acyclic /
/// near-acyclic shapes (path, star, 4-path, 4-cycle, tailed triangle).
///
/// Every atom Ri is bound to the catalog relation named "G" — the
/// paper's test-case construction assigns each relation a copy of the
/// same graph.
StatusOr<Query> MakeBenchmarkQuery(int index);

/// Names "Q1".."Q11" for display.
std::string BenchmarkQueryName(int index);

/// Indices of the queries the evaluation focuses on (Q1..Q6).
std::vector<int> EvaluatedQueryIndices();

}  // namespace adj::query

#endif  // ADJ_QUERY_QUERIES_H_
