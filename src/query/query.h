#ifndef ADJ_QUERY_QUERY_H_
#define ADJ_QUERY_QUERY_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/schema.h"

namespace adj::query {

/// One relation occurrence in a natural-join query: a relation name
/// (resolved against the catalog at execution time) and the query
/// attributes it binds.
struct Atom {
  std::string relation;   // catalog name of the base relation
  storage::Schema schema; // attributes bound by this occurrence
};

/// A natural join query Q :- R1(...) ⋈ ... ⋈ Rm(...), Eq. (1) of the
/// paper. Attributes live in a query-level universe: attribute id i has
/// name attr_names()[i]; ids are assigned alphabetically so that the
/// paper's "a ≺ b ≺ c ..." order is id order.
class Query {
 public:
  Query() = default;

  /// Parses the compact form used throughout the paper, e.g.
  ///   "R1(a,b) R2(b,c) R3(a,c)".
  /// Every parenthesized group is one atom; the identifier before it is
  /// the catalog name of its base relation. Attribute names are
  /// single identifiers; ids are assigned in sorted name order.
  static StatusOr<Query> Parse(const std::string& text);

  int num_attrs() const { return static_cast<int>(attr_names_.size()); }
  int num_atoms() const { return static_cast<int>(atoms_.size()); }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const Atom& atom(int i) const { return atoms_[i]; }
  const std::vector<std::string>& attr_names() const { return attr_names_; }
  const std::string& attr_name(AttrId a) const { return attr_names_[a]; }

  /// Mask of all attributes (attrs(Q)).
  AttrMask AllAttrs() const {
    return num_attrs() >= 32 ? ~AttrMask(0)
                             : (AttrMask(1) << num_attrs()) - 1;
  }

  /// Atoms (as a mask) whose schema contains attribute `a`.
  AtomMask AtomsWith(AttrId a) const;

  /// Attribute id for `name`, or error.
  StatusOr<AttrId> AttrByName(const std::string& name) const;

  std::string ToString() const;

  /// Direct construction (used by pre-computed query rewriting):
  /// attr names indexed by AttrId, plus atoms over those ids.
  static Query Make(std::vector<std::string> attr_names,
                    std::vector<Atom> atoms);

 private:
  std::vector<std::string> attr_names_;
  std::vector<Atom> atoms_;
};

}  // namespace adj::query

#endif  // ADJ_QUERY_QUERY_H_
