#include "query/attribute_order.h"

#include <algorithm>

namespace adj::query {

std::vector<int> RankOf(const AttributeOrder& order, int num_attrs) {
  std::vector<int> rank(num_attrs, -1);
  for (size_t i = 0; i < order.size(); ++i) rank[order[i]] = int(i);
  return rank;
}

std::vector<AttributeOrder> AllOrders(AttrMask attrs) {
  AttributeOrder base;
  for (int a = 0; a < 32; ++a) {
    if (attrs & (AttrMask(1) << a)) base.push_back(a);
  }
  std::vector<AttributeOrder> out;
  std::sort(base.begin(), base.end());
  do {
    out.push_back(base);
  } while (std::next_permutation(base.begin(), base.end()));
  return out;
}

std::string OrderToString(const AttributeOrder& order, const Query& q) {
  std::string out;
  for (size_t i = 0; i < order.size(); ++i) {
    if (i > 0) out += " < ";
    out += q.attr_name(order[i]);
  }
  return out;
}

}  // namespace adj::query
