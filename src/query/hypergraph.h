#ifndef ADJ_QUERY_HYPERGRAPH_H_
#define ADJ_QUERY_HYPERGRAPH_H_

#include <vector>

#include "common/types.h"
#include "query/query.h"

namespace adj::query {

/// Hypergraph H = (V, E) of a join query (Sec. II): one vertex per
/// attribute, one hyperedge (attribute mask) per atom.
class Hypergraph {
 public:
  explicit Hypergraph(const Query& q);
  Hypergraph(int num_vertices, std::vector<AttrMask> edges)
      : num_vertices_(num_vertices), edges_(std::move(edges)) {}

  int num_vertices() const { return num_vertices_; }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const std::vector<AttrMask>& edges() const { return edges_; }
  AttrMask edge(int i) const { return edges_[i]; }

  /// True if the sub-hypergraph induced by the edges in `edge_set`
  /// is connected (edges sharing a vertex are adjacent).
  bool EdgesConnected(AtomMask edge_set) const;

  /// GYO (Graham–Yu–Ozsoyoglu) reduction over the given edge masks.
  /// Returns true iff the hypergraph they form is alpha-acyclic; when
  /// acyclic and `parent` != nullptr, fills a join-tree parent index
  /// per edge (-1 for the root) satisfying the running-intersection
  /// property.
  static bool GyoAcyclic(const std::vector<AttrMask>& edge_masks,
                         std::vector<int>* parent);

  /// Vertices (as a mask) covered by the edges in `edge_set`.
  AttrMask VerticesOf(AtomMask edge_set) const;

 private:
  int num_vertices_ = 0;
  std::vector<AttrMask> edges_;
};

}  // namespace adj::query

#endif  // ADJ_QUERY_HYPERGRAPH_H_
