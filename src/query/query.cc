#include "query/query.h"

#include <algorithm>
#include <cctype>
#include <map>

namespace adj::query {
namespace {

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<Query> Query::Parse(const std::string& text) {
  struct RawAtom {
    std::string relation;
    std::vector<std::string> attrs;
  };
  std::vector<RawAtom> raw;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    if (std::isspace(static_cast<unsigned char>(text[i])) || text[i] == ',') {
      ++i;
      continue;
    }
    if (!IsIdentChar(text[i])) {
      return Status::InvalidArgument("unexpected character in query: " +
                                     std::string(1, text[i]));
    }
    size_t start = i;
    while (i < n && IsIdentChar(text[i])) ++i;
    RawAtom atom;
    atom.relation = text.substr(start, i - start);
    while (i < n && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i >= n || text[i] != '(') {
      return Status::InvalidArgument("expected '(' after relation name " +
                                     atom.relation);
    }
    ++i;  // consume '('
    while (true) {
      while (i < n && (std::isspace(static_cast<unsigned char>(text[i])) ||
                       text[i] == ',')) {
        ++i;
      }
      if (i >= n) return Status::InvalidArgument("unterminated atom");
      if (text[i] == ')') {
        ++i;
        break;
      }
      size_t astart = i;
      while (i < n && IsIdentChar(text[i])) ++i;
      if (i == astart) {
        return Status::InvalidArgument("bad attribute list in atom " +
                                       atom.relation);
      }
      atom.attrs.push_back(text.substr(astart, i - astart));
    }
    if (atom.attrs.empty()) {
      return Status::InvalidArgument("atom with no attributes: " +
                                     atom.relation);
    }
    raw.push_back(std::move(atom));
  }
  if (raw.size() < 1) {
    return Status::InvalidArgument("query has no atoms");
  }

  // Assign attribute ids in sorted name order so "a ≺ b ≺ c" is id order.
  std::map<std::string, AttrId> ids;
  for (const RawAtom& atom : raw) {
    for (const std::string& a : atom.attrs) ids.emplace(a, 0);
  }
  if (ids.size() > 32) {
    return Status::InvalidArgument("more than 32 attributes unsupported");
  }
  Query q;
  for (auto& [name, id] : ids) {
    id = static_cast<AttrId>(q.attr_names_.size());
    q.attr_names_.push_back(name);
  }
  for (const RawAtom& atom : raw) {
    std::vector<AttrId> schema;
    schema.reserve(atom.attrs.size());
    for (const std::string& a : atom.attrs) schema.push_back(ids[a]);
    // Duplicate attribute within one atom is not a natural-join atom.
    std::vector<AttrId> sorted = schema;
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::InvalidArgument("repeated attribute in atom " +
                                     atom.relation);
    }
    q.atoms_.push_back(Atom{atom.relation, storage::Schema(std::move(schema))});
  }
  return q;
}

Query Query::Make(std::vector<std::string> attr_names,
                  std::vector<Atom> atoms) {
  Query q;
  q.attr_names_ = std::move(attr_names);
  q.atoms_ = std::move(atoms);
  return q;
}

AtomMask Query::AtomsWith(AttrId a) const {
  AtomMask mask = 0;
  for (int i = 0; i < num_atoms(); ++i) {
    if (atoms_[i].schema.Contains(a)) mask |= (AtomMask(1) << i);
  }
  return mask;
}

StatusOr<AttrId> Query::AttrByName(const std::string& name) const {
  for (int i = 0; i < num_attrs(); ++i) {
    if (attr_names_[i] == name) return static_cast<AttrId>(i);
  }
  return Status::NotFound("no attribute named " + name);
}

std::string Query::ToString() const {
  std::string out;
  for (int i = 0; i < num_atoms(); ++i) {
    if (i > 0) out += " ⋈ ";
    out += atoms_[i].relation + "(";
    const storage::Schema& s = atoms_[i].schema;
    for (int j = 0; j < s.arity(); ++j) {
      if (j > 0) out += ",";
      out += attr_names_[s.attr(j)];
    }
    out += ")";
  }
  return out;
}

}  // namespace adj::query
