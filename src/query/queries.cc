#include "query/queries.h"

namespace adj::query {
namespace {

/// Query bodies, indexed by query number - 1. Each atom's base
/// relation is "G"; the leading identifier is the atom's display name
/// only, so all atoms use G(...) directly.
const char* kQueryText[11] = {
    // Q1: triangle.
    "G(a,b) G(b,c) G(a,c)",
    // Q2: 4-clique.
    "G(a,b) G(b,c) G(c,d) G(d,a) G(a,c) G(b,d)",
    // Q3: 5-clique.
    "G(a,b) G(b,c) G(c,d) G(d,e) G(e,a) G(b,d) G(b,e) G(c,a) G(c,e) G(a,d)",
    // Q4: 5-cycle with one chord (b,e).
    "G(a,b) G(b,c) G(c,d) G(d,e) G(e,a) G(b,e)",
    // Q5: Q4 plus chord (b,d).
    "G(a,b) G(b,c) G(c,d) G(d,e) G(e,a) G(b,e) G(b,d)",
    // Q6: Q5 plus chord (c,e).
    "G(a,b) G(b,c) G(c,d) G(d,e) G(e,a) G(b,e) G(b,d) G(c,e)",
    // Q7 (reconstructed): 3-path.
    "G(a,b) G(b,c)",
    // Q8 (reconstructed): out-star on 4 nodes.
    "G(a,b) G(a,c) G(a,d)",
    // Q9 (reconstructed): 4-path.
    "G(a,b) G(b,c) G(c,d)",
    // Q10 (reconstructed): 4-cycle.
    "G(a,b) G(b,c) G(c,d) G(d,a)",
    // Q11 (reconstructed): tailed triangle.
    "G(a,b) G(b,c) G(a,c) G(c,d)",
};

}  // namespace

StatusOr<Query> MakeBenchmarkQuery(int index) {
  if (index < 1 || index > 11) {
    return Status::InvalidArgument("benchmark query index must be in [1,11]");
  }
  return Query::Parse(kQueryText[index - 1]);
}

std::string BenchmarkQueryName(int index) {
  return "Q" + std::to_string(index);
}

std::vector<int> EvaluatedQueryIndices() { return {1, 2, 3, 4, 5, 6}; }

}  // namespace adj::query
