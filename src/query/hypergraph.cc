#include "query/hypergraph.h"

namespace adj::query {

Hypergraph::Hypergraph(const Query& q) : num_vertices_(q.num_attrs()) {
  edges_.reserve(q.num_atoms());
  for (const Atom& atom : q.atoms()) edges_.push_back(atom.schema.Mask());
}

bool Hypergraph::EdgesConnected(AtomMask edge_set) const {
  if (edge_set == 0) return true;
  AtomMask visited = AtomMask(1) << LowestBit(edge_set);
  AttrMask frontier = edges_[LowestBit(edge_set)];
  bool grew = true;
  while (grew) {
    grew = false;
    for (int e = 0; e < num_edges(); ++e) {
      AtomMask bit = AtomMask(1) << e;
      if ((edge_set & bit) == 0 || (visited & bit) != 0) continue;
      if ((edges_[e] & frontier) != 0) {
        visited |= bit;
        frontier |= edges_[e];
        grew = true;
      }
    }
  }
  return visited == edge_set;
}

bool Hypergraph::GyoAcyclic(const std::vector<AttrMask>& edge_masks,
                            std::vector<int>* parent) {
  const int m = static_cast<int>(edge_masks.size());
  std::vector<AttrMask> cur = edge_masks;  // working copies, shrink over time
  std::vector<bool> alive(m, true);
  if (parent != nullptr) parent->assign(m, -1);
  int alive_count = m;

  bool progressed = true;
  while (progressed && alive_count > 1) {
    progressed = false;
    // Rule 1: delete vertices that occur in exactly one edge.
    for (int e = 0; e < m; ++e) {
      if (!alive[e]) continue;
      AttrMask exclusive = cur[e];
      for (int f = 0; f < m; ++f) {
        if (f != e && alive[f]) exclusive &= ~cur[f];
      }
      if (exclusive != 0) {
        cur[e] &= ~exclusive;
        progressed = true;
      }
    }
    // Rule 2: delete an edge contained in another edge ("ear").
    for (int e = 0; e < m && alive_count > 1; ++e) {
      if (!alive[e]) continue;
      for (int f = 0; f < m; ++f) {
        if (f == e || !alive[f]) continue;
        if ((cur[e] & ~cur[f]) == 0) {
          alive[e] = false;
          --alive_count;
          if (parent != nullptr) (*parent)[e] = f;
          progressed = true;
          break;
        }
      }
    }
  }
  // Each removed ear was parented to a then-alive edge, so the parent
  // links already form a tree rooted at the last alive edge.
  return alive_count <= 1;
}

AttrMask Hypergraph::VerticesOf(AtomMask edge_set) const {
  AttrMask mask = 0;
  for (int e = 0; e < num_edges(); ++e) {
    if (edge_set & (AtomMask(1) << e)) mask |= edges_[e];
  }
  return mask;
}

}  // namespace adj::query
