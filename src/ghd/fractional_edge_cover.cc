#include "ghd/fractional_edge_cover.h"

#include "ghd/simplex.h"

namespace adj::ghd {

StatusOr<EdgeCover> FractionalEdgeCover(AttrMask vertices,
                                        const std::vector<AttrMask>& edges) {
  const int m = static_cast<int>(edges.size());
  LinearProgram lp;
  lp.c.assign(m, 1.0);
  for (int v = 0; v < 32; ++v) {
    if ((vertices & (AttrMask(1) << v)) == 0) continue;
    std::vector<double> row(m, 0.0);
    bool covered = false;
    for (int e = 0; e < m; ++e) {
      if (edges[e] & (AttrMask(1) << v)) {
        row[e] = 1.0;
        covered = true;
      }
    }
    if (!covered) {
      return Status::InvalidArgument(
          "vertex not covered by any edge; no edge cover exists");
    }
    lp.a.push_back(std::move(row));
    lp.b.push_back(1.0);
  }
  StatusOr<LpSolution> sol = SolveMinCover(lp);
  if (!sol.ok()) return sol.status();
  EdgeCover cover;
  cover.rho = sol->objective;
  cover.weights = std::move(sol->x);
  return cover;
}

}  // namespace adj::ghd
