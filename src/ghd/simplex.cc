#include "ghd/simplex.h"

#include <cmath>
#include <limits>

namespace adj::ghd {
namespace {

constexpr double kEps = 1e-9;

/// Standard-form tableau simplex with Bland's rule (no cycling).
/// We convert  min c^T x, A x >= b, x >= 0  into
///             min c^T x + M * sum(artificials)
/// with surplus variables:  A x - s + t = b  (t artificial, only where
/// needed), i.e., the big-M method. Problem sizes here are tiny
/// (<= ~12 variables, <= ~8 constraints), so numerical behaviour is
/// benign.
class Tableau {
 public:
  Tableau(const LinearProgram& lp) {
    const int m = static_cast<int>(lp.a.size());
    const int n = static_cast<int>(lp.c.size());
    n_orig_ = n;
    // Columns: x (n), surplus s (m), artificial t (m), then RHS.
    cols_ = n + 2 * m;
    rows_.assign(m, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(m, 0);
    obj_.assign(cols_ + 1, 0.0);

    const double big_m = 1e7;
    for (int i = 0; i < m; ++i) {
      double rhs = lp.b[i];
      for (int j = 0; j < n; ++j) rows_[i][j] = lp.a[i][j];
      rows_[i][n + i] = -1.0;      // surplus
      rows_[i][n + m + i] = 1.0;   // artificial
      rows_[i][cols_] = rhs;
      if (rhs < 0) {
        // Normalize to non-negative RHS.
        for (int j = 0; j <= cols_; ++j) rows_[i][j] = -rows_[i][j];
      }
      basis_[i] = n + m + i;
    }
    for (int j = 0; j < n; ++j) obj_[j] = lp.c[j];
    for (int i = 0; i < m; ++i) obj_[n + m + i] = big_m;
    // Price out the artificial basis.
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j <= cols_; ++j) obj_[j] -= big_m * rows_[i][j];
    }
  }

  Status Solve() {
    const int max_iter = 10000;
    for (int iter = 0; iter < max_iter; ++iter) {
      // Bland's rule: entering column = lowest index with negative
      // reduced cost.
      int enter = -1;
      for (int j = 0; j < cols_; ++j) {
        if (obj_[j] < -kEps) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return Status::OK();  // optimal
      // Ratio test; Bland tie-break on basis index.
      int leave = -1;
      double best = std::numeric_limits<double>::infinity();
      for (int i = 0; i < int(rows_.size()); ++i) {
        if (rows_[i][enter] > kEps) {
          double ratio = rows_[i][cols_] / rows_[i][enter];
          if (ratio < best - kEps ||
              (ratio < best + kEps &&
               (leave < 0 || basis_[i] < basis_[leave]))) {
            best = ratio;
            leave = i;
          }
        }
      }
      if (leave < 0) return Status::Internal("LP unbounded");
      Pivot(leave, enter);
    }
    return Status::Internal("simplex iteration limit");
  }

  /// Basic solution restricted to the original variables. The caller
  /// recomputes the objective from x to avoid big-M residue.
  LpSolution Extract() const {
    LpSolution sol;
    sol.x.assign(n_orig_, 0.0);
    for (int i = 0; i < int(rows_.size()); ++i) {
      if (basis_[i] < n_orig_) sol.x[basis_[i]] = rows_[i][cols_];
    }
    return sol;
  }

 private:
  void Pivot(int leave, int enter) {
    std::vector<double>& prow = rows_[leave];
    const double pivot = prow[enter];
    for (double& v : prow) v /= pivot;
    for (int i = 0; i < int(rows_.size()); ++i) {
      if (i == leave) continue;
      const double factor = rows_[i][enter];
      if (std::fabs(factor) < kEps) continue;
      for (int j = 0; j <= cols_; ++j) rows_[i][j] -= factor * prow[j];
    }
    const double of = obj_[enter];
    if (std::fabs(of) > kEps) {
      for (int j = 0; j <= cols_; ++j) obj_[j] -= of * prow[j];
    }
    basis_[leave] = enter;
  }

  int n_orig_ = 0;
  int cols_ = 0;
  std::vector<std::vector<double>> rows_;
  std::vector<int> basis_;
  std::vector<double> obj_;
};

}  // namespace

StatusOr<LpSolution> SolveMinCover(const LinearProgram& lp) {
  if (lp.a.size() != lp.b.size()) {
    return Status::InvalidArgument("LP row count mismatch");
  }
  for (const auto& row : lp.a) {
    if (row.size() != lp.c.size()) {
      return Status::InvalidArgument("LP column count mismatch");
    }
  }
  if (lp.a.empty()) {
    LpSolution sol;
    sol.x.assign(lp.c.size(), 0.0);
    return sol;
  }
  Tableau tableau(lp);
  ADJ_RETURN_IF_ERROR(tableau.Solve());
  LpSolution sol = tableau.Extract();
  double obj = 0.0;
  for (size_t j = 0; j < lp.c.size(); ++j) obj += lp.c[j] * sol.x[j];
  sol.objective = obj;
  // Feasibility check (artificials must have left the basis).
  for (size_t i = 0; i < lp.a.size(); ++i) {
    double lhs = 0.0;
    for (size_t j = 0; j < lp.c.size(); ++j) lhs += lp.a[i][j] * sol.x[j];
    if (lhs < lp.b[i] - 1e-6) {
      return Status::Internal("LP infeasible solution returned");
    }
  }
  return sol;
}

}  // namespace adj::ghd
