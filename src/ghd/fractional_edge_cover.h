#ifndef ADJ_GHD_FRACTIONAL_EDGE_COVER_H_
#define ADJ_GHD_FRACTIONAL_EDGE_COVER_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace adj::ghd {

/// Fractional edge cover of the vertex set `vertices` using the given
/// hyperedges: the LP  min sum_e x_e  s.t. for every v in vertices,
/// sum_{e : v in e} x_e >= 1, x_e >= 0. Its optimum rho* is the AGM
/// exponent: the join of relations with those schemas has at most
/// |Rmax|^rho* output tuples (Atserias–Grohe–Marx), and a GHD's width
/// is the max rho* over its bags (fhw).
struct EdgeCover {
  double rho = 0.0;              // optimal objective (the AGM exponent)
  std::vector<double> weights;   // x_e per input edge
};

/// Fails (InvalidArgument) if some vertex in `vertices` is covered by
/// no edge — then no cover exists.
StatusOr<EdgeCover> FractionalEdgeCover(AttrMask vertices,
                                        const std::vector<AttrMask>& edges);

}  // namespace adj::ghd

#endif  // ADJ_GHD_FRACTIONAL_EDGE_COVER_H_
