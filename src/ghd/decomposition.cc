#include "ghd/decomposition.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "ghd/fractional_edge_cover.h"

namespace adj::ghd {
namespace {

constexpr double kWidthEps = 1e-6;

/// Calls fn(assignment, num_groups) for every set partition of
/// {0..m-1}, enumerated via restricted growth strings.
void ForEachPartition(
    int m, const std::function<void(const std::vector<int>&, int)>& fn) {
  std::vector<int> assign(m, 0);
  std::function<void(int, int)> rec = [&](int i, int groups) {
    if (i == m) {
      fn(assign, groups);
      return;
    }
    for (int g = 0; g <= groups && g < 32; ++g) {
      assign[i] = g;
      rec(i + 1, std::max(groups, g + 1));
    }
  };
  rec(0, 0);
}

struct Candidate {
  std::vector<Bag> bags;
  std::vector<int> parent;
  double width = 0.0;
  double total_rho = 0.0;
};

/// Lexicographic better-than: min width, then max bag count, then min
/// total rho (finer decompositions give the optimizer more candidate
/// relations at the same worst-case bound).
bool Better(const Candidate& a, const Candidate& b) {
  if (a.width < b.width - kWidthEps) return true;
  if (a.width > b.width + kWidthEps) return false;
  if (a.bags.size() != b.bags.size()) return a.bags.size() > b.bags.size();
  return a.total_rho < b.total_rho - kWidthEps;
}

}  // namespace

std::vector<int> Decomposition::Neighbors(int v) const {
  std::vector<int> out;
  for (int u = 0; u < num_bags(); ++u) {
    if (u == v) continue;
    if (parent[u] == v || parent[v] == u) out.push_back(u);
  }
  return out;
}

std::string Decomposition::ToString(const query::Query& q) const {
  std::string out = "T(width=" + std::to_string(width) + "){";
  for (int i = 0; i < num_bags(); ++i) {
    if (i > 0) out += "; ";
    out += "v" + std::to_string(i) + "[";
    bool first = true;
    for (int a = 0; a < q.num_attrs(); ++a) {
      if (bags[i].attrs & (AttrMask(1) << a)) {
        if (!first) out += ",";
        out += q.attr_name(a);
        first = false;
      }
    }
    out += "]";
    if (parent[i] >= 0) out += "->v" + std::to_string(parent[i]);
  }
  out += "}";
  return out;
}

StatusOr<Decomposition> FindOptimalGhd(const query::Query& q) {
  const query::Hypergraph h(q);
  const int m = h.num_edges();
  if (m == 0) return Status::InvalidArgument("query has no atoms");
  if (m > 12) {
    return Status::InvalidArgument(
        "partition-based GHD search supports <= 12 atoms");
  }

  bool found = false;
  Candidate best;
  Status lp_error = Status::OK();

  // Per-group results are shared across the (up to Bell(m)) partitions:
  // memoize connectivity and the fractional-edge-cover LP by atom mask.
  std::unordered_map<AtomMask, bool> connected_cache;
  std::unordered_map<AtomMask, double> rho_cache;
  auto group_connected = [&](AtomMask atoms) {
    auto it = connected_cache.find(atoms);
    if (it != connected_cache.end()) return it->second;
    const bool c = h.EdgesConnected(atoms);
    connected_cache.emplace(atoms, c);
    return c;
  };
  auto group_rho = [&](AtomMask atoms, AttrMask attrs) -> double {
    auto it = rho_cache.find(atoms);
    if (it != rho_cache.end()) return it->second;
    std::vector<AttrMask> bag_edges;
    for (int e = 0; e < m; ++e) {
      if (atoms & (AtomMask(1) << e)) bag_edges.push_back(h.edge(e));
    }
    StatusOr<EdgeCover> cover = FractionalEdgeCover(attrs, bag_edges);
    if (!cover.ok()) {
      lp_error = cover.status();
      rho_cache.emplace(atoms, -1.0);
      return -1.0;
    }
    rho_cache.emplace(atoms, cover->rho);
    return cover->rho;
  };

  ForEachPartition(m, [&](const std::vector<int>& assign, int groups) {
    // Collect group masks.
    std::vector<AtomMask> group_atoms(groups, 0);
    for (int e = 0; e < m; ++e) {
      group_atoms[assign[e]] |= (AtomMask(1) << e);
    }
    // Each group must be connected: a disconnected bag would be a
    // cartesian product, never cost-effective and not a GHD node.
    for (int g = 0; g < groups; ++g) {
      if (!group_connected(group_atoms[g])) return;
    }
    // Grouped schemas must form an acyclic hypergraph (a hypertree).
    std::vector<AttrMask> group_attrs(groups);
    for (int g = 0; g < groups; ++g) {
      group_attrs[g] = h.VerticesOf(group_atoms[g]);
    }
    std::vector<int> parent;
    if (!query::Hypergraph::GyoAcyclic(group_attrs, &parent)) return;

    Candidate cand;
    cand.parent = parent;
    cand.bags.resize(groups);
    for (int g = 0; g < groups; ++g) {
      Bag& bag = cand.bags[g];
      bag.atoms = group_atoms[g];
      bag.attrs = group_attrs[g];
      bag.rho = group_rho(bag.atoms, bag.attrs);
      if (bag.rho < 0) return;  // LP failed (recorded in lp_error)
      cand.width = std::max(cand.width, bag.rho);
      cand.total_rho += bag.rho;
    }
    if (!found || Better(cand, best)) {
      best = std::move(cand);
      found = true;
    }
  });

  if (!found) {
    if (!lp_error.ok()) return lp_error;
    return Status::Internal("no GHD found (unexpected: the one-bag "
                            "partition is always acyclic)");
  }
  Decomposition d;
  d.bags = std::move(best.bags);
  d.parent = std::move(best.parent);
  d.width = best.width;
  return d;
}

std::vector<std::vector<int>> TraversalOrders(const Decomposition& d) {
  const int k = d.num_bags();
  std::vector<std::vector<int>> out;
  std::vector<int> order;
  std::vector<bool> used(k, false);

  std::function<void()> rec = [&]() {
    if (static_cast<int>(order.size()) == k) {
      out.push_back(order);
      return;
    }
    for (int v = 0; v < k; ++v) {
      if (used[v]) continue;
      // Prefix connectivity: after the first bag, v must be adjacent
      // in the join tree to an already-traversed bag.
      if (!order.empty()) {
        bool adjacent = false;
        for (int u : d.Neighbors(v)) {
          if (used[u]) {
            adjacent = true;
            break;
          }
        }
        if (!adjacent) continue;
      }
      used[v] = true;
      order.push_back(v);
      rec();
      order.pop_back();
      used[v] = false;
    }
  };
  rec();
  return out;
}

std::vector<query::AttributeOrder> ValidAttributeOrders(
    const Decomposition& d, const query::Query& q) {
  std::vector<query::AttributeOrder> out;
  for (const std::vector<int>& traversal : TraversalOrders(d)) {
    // New attributes contributed by each bag along the traversal.
    std::vector<std::vector<AttrId>> groups;
    AttrMask seen = 0;
    for (int v : traversal) {
      AttrMask fresh = d.bags[v].attrs & ~seen;
      seen |= d.bags[v].attrs;
      std::vector<AttrId> group;
      for (int a = 0; a < q.num_attrs(); ++a) {
        if (fresh & (AttrMask(1) << a)) group.push_back(a);
      }
      if (!group.empty()) groups.push_back(std::move(group));
    }
    // Cartesian product of within-group permutations.
    std::vector<query::AttributeOrder> partial{{}};
    for (std::vector<AttrId>& group : groups) {
      std::vector<query::AttributeOrder> next;
      std::sort(group.begin(), group.end());
      do {
        for (const query::AttributeOrder& prefix : partial) {
          query::AttributeOrder order = prefix;
          order.insert(order.end(), group.begin(), group.end());
          next.push_back(std::move(order));
        }
      } while (std::next_permutation(group.begin(), group.end()));
      partial = std::move(next);
    }
    out.insert(out.end(), partial.begin(), partial.end());
  }
  // Different traversals can yield the same attribute order; dedupe.
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

bool IsValidOrder(const Decomposition& d, const query::Query& q,
                  const query::AttributeOrder& order) {
  return !OrderBagSegments(d, q, order).empty();
}

std::vector<int> OrderBagSegments(const Decomposition& d,
                                  const query::Query& q,
                                  const query::AttributeOrder& order) {
  (void)q;
  // Greedily replay the order against some traversal: at each step the
  // set of attributes seen so far must equal the union of a connected
  // set of traversed bags' fresh attributes. We simulate by choosing
  // bags as soon as one of their attributes appears and verifying
  // segment structure.
  const int k = d.num_bags();
  std::vector<bool> used(k, false);
  std::vector<int> segments;
  AttrMask seen = 0;
  size_t i = 0;
  bool first_bag = true;
  while (i < order.size()) {
    // Find a bag that (a) contains order[i] as a fresh attribute,
    // (b) is adjacent to a used bag (or is first), and (c) whose
    // remaining fresh attributes exactly form the next segment.
    bool matched = false;
    for (int v = 0; v < k && !matched; ++v) {
      if (used[v]) continue;
      AttrMask fresh = d.bags[v].attrs & ~seen;
      if ((fresh & (AttrMask(1) << order[i])) == 0) continue;
      if (!first_bag) {
        bool adjacent = false;
        for (int u : d.Neighbors(v)) {
          if (used[u]) {
            adjacent = true;
            break;
          }
        }
        if (!adjacent) continue;
      }
      // The next PopCount(fresh) attributes of the order must be
      // exactly `fresh`.
      const int len = PopCount(fresh);
      if (i + len > order.size()) continue;
      AttrMask got = 0;
      for (int j = 0; j < len; ++j) got |= (AttrMask(1) << order[i + j]);
      if (got != fresh) continue;
      used[v] = true;
      seen |= d.bags[v].attrs;
      segments.push_back(len);
      i += len;
      first_bag = false;
      matched = true;
    }
    if (!matched) {
      // Maybe a bag with no fresh attributes needs to be traversed
      // (its attrs are all seen): mark any adjacent such bag used.
      bool absorbed = false;
      for (int v = 0; v < k; ++v) {
        if (used[v]) continue;
        if ((d.bags[v].attrs & ~seen) != 0) continue;
        bool adjacent = first_bag;
        for (int u : d.Neighbors(v)) {
          if (used[u]) adjacent = true;
        }
        if (adjacent) {
          used[v] = true;
          segments.push_back(0);
          absorbed = true;
          first_bag = false;
          break;
        }
      }
      if (!absorbed) return {};
    }
  }
  return segments;
}

}  // namespace adj::ghd
