#ifndef ADJ_GHD_SIMPLEX_H_
#define ADJ_GHD_SIMPLEX_H_

#include <vector>

#include "common/status.h"

namespace adj::ghd {

/// Dense two-phase simplex solver for the small linear programs that
/// arise in fractional edge cover / fractional hypertree width
/// computation (a handful of variables and constraints).
///
/// Solves:  minimize    c^T x
///          subject to  A x >= b,  x >= 0
///
/// Problems here are always feasible and bounded (edge covers exist,
/// weights are non-negative with positive costs), but the solver
/// reports Status errors defensively.
struct LinearProgram {
  // Row-major constraint matrix, one row per ">=" constraint.
  std::vector<std::vector<double>> a;
  std::vector<double> b;  // right-hand sides
  std::vector<double> c;  // objective coefficients
};

struct LpSolution {
  double objective = 0.0;
  std::vector<double> x;
};

StatusOr<LpSolution> SolveMinCover(const LinearProgram& lp);

}  // namespace adj::ghd

#endif  // ADJ_GHD_SIMPLEX_H_
