#ifndef ADJ_GHD_DECOMPOSITION_H_
#define ADJ_GHD_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "query/attribute_order.h"
#include "query/hypergraph.h"
#include "query/query.h"

namespace adj::ghd {

/// One hypernode of the hypertree T (Sec. III-A): a set of atoms whose
/// join is the bag's candidate pre-computed relation R_v.
struct Bag {
  AtomMask atoms = 0;   // atoms assigned to this bag
  AttrMask attrs = 0;   // union of their schemas
  double rho = 0.0;     // fractional edge cover of attrs by the atoms
  /// True when the bag is a single original atom — nothing to
  /// pre-compute ("there is no need to join", Example 3).
  bool IsSingleAtom() const { return PopCount(atoms) == 1; }
};

/// A generalized hypertree decomposition of a query: bags plus a join
/// tree satisfying the running-intersection property. `width` is
/// max over bags of rho — the fhw of this decomposition, bounding every
/// pre-computed relation by |Rmax|^width.
struct Decomposition {
  std::vector<Bag> bags;
  std::vector<int> parent;  // join-tree parent per bag; -1 at the root
  double width = 0.0;

  int num_bags() const { return static_cast<int>(bags.size()); }
  /// Bags adjacent to `v` in the join tree.
  std::vector<int> Neighbors(int v) const;
  std::string ToString(const query::Query& q) const;
};

/// Finds the optimal hypertree T for a query by exhaustive
/// partition search (the paper's queries have <= 10 atoms, so the Bell
/// number B(10) = 115975 of candidate partitions is tractable):
/// every partition of the atom set into connected groups whose grouped
/// schemas form an alpha-acyclic hypergraph is a GHD candidate; we keep
/// the one with (1) minimal width, (2) most bags, (3) minimal total
/// rho, matching Sec. III-A's "maximal size of the pre-computed
/// relation of each hypernode is minimal".
StatusOr<Decomposition> FindOptimalGhd(const query::Query& q);

/// All traversal orders of the decomposition's bags: permutations in
/// which every prefix is connected in the join tree (the validity
/// condition of Alg. 2 line 6).
std::vector<std::vector<int>> TraversalOrders(const Decomposition& d);

/// All *valid* attribute orders derived from the decomposition
/// (Sec. III-A): for some traversal order v1..vk, the attributes first
/// appearing in vi all precede those first appearing in vj for i < j;
/// within a bag any permutation is allowed.
std::vector<query::AttributeOrder> ValidAttributeOrders(
    const Decomposition& d, const query::Query& q);

/// True if `order` is a valid attribute order for the decomposition.
bool IsValidOrder(const Decomposition& d, const query::Query& q,
                  const query::AttributeOrder& order);

/// Splits an attribute order into consecutive segments per traversed
/// bag: seg[i] = number of order positions whose attribute first
/// appears in the i-th traversed bag. Returns empty if the order is
/// not valid for the decomposition.
std::vector<int> OrderBagSegments(const Decomposition& d,
                                  const query::Query& q,
                                  const query::AttributeOrder& order);

}  // namespace adj::ghd

#endif  // ADJ_GHD_DECOMPOSITION_H_
