#ifndef ADJ_SERVE_PREPARED_QUERY_CACHE_H_
#define ADJ_SERVE_PREPARED_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/prepared_query.h"
#include "storage/catalog.h"

namespace adj::serve {

/// Bounded LRU cache of master api::PreparedQuery instances, keyed by
/// normalized query text — the piece that amortizes the paper's
/// plan-once cost model across requests: the first request for a query
/// pays planning + pre-computation, every later request for the same
/// text runs the cached ExecutionContext at O(query) cost.
///
/// Keying: callers pass the *normalized* key (serve::Server uses the
/// canonical core::SpjQuery::ToString() rendering of the parsed text),
/// so lexical variants of one query share an entry; semantically equal
/// queries written differently (reordered atoms, renamed variables) do
/// not — normalization is canonical-rendering, not query equivalence.
///
/// Invalidation is per-relation, not per-catalog: every entry carries
/// its PreparedQuery's dependency_versions() — the relations the plan
/// reads, each at the version it was prepared against. Lookup
/// revalidates them against the live catalog: all versions unchanged →
/// hit; any mismatch → the entry is removed (counted in
/// Stats::invalidations) and, instead of being discarded, handed back
/// through `stale` so the caller can api::Session::Reprepare it at
/// delta cost rather than re-planning from scratch. Entries whose
/// relations a write did not touch are never invalidated by it —
/// that is the point of versioned dependencies.
///
/// Concurrency: all operations are mutex-serialized, so any number of
/// server workers may Lookup/Insert concurrently. Lookup hands out a
/// *copy* of the master entry (PreparedQuery copies are cheap handle
/// copies that share the reduced catalog, the ExecutionContext, and
/// the charge-planning-once flag), because one PreparedQuery instance
/// must not be Run() from two threads.
class PreparedQueryCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;      // LRU evictions (capacity or bytes)
    uint64_t invalidations = 0;  // dependency-version-mismatch drops
    uint64_t oversize_rejects = 0;  // entries bigger than the budget
    uint64_t resident_bytes = 0;    // current pinned-index + bag bytes
  };

  /// `capacity` = max resident entries; 0 disables caching (every
  /// lookup misses, every insert is dropped).
  ///
  /// `memory_budget_bytes` bounds what the cached entries keep
  /// resident — each entry is charged its PreparedQuery's
  /// resident_bytes(), i.e. the index artifacts its ExecutionContext
  /// pins plus its materialized bags (bytes, not entry counts — cached
  /// plans differ by orders of magnitude in footprint). Inserting past
  /// the budget evicts from the LRU tail; an entry alone exceeding the
  /// budget is not cached at all (counted in Stats::oversize_rejects).
  /// 0 = no byte budget, the entry cap alone bounds the cache.
  explicit PreparedQueryCache(size_t capacity,
                              uint64_t memory_budget_bytes = 0)
      : capacity_(capacity), memory_budget_bytes_(memory_budget_bytes) {}

  PreparedQueryCache(const PreparedQueryCache&) = delete;
  PreparedQueryCache& operator=(const PreparedQueryCache&) = delete;

  /// A copy of the entry under `key` if present and every one of its
  /// dependency versions still matches `catalog`; nullopt otherwise. A
  /// stale entry is removed on the way and — when `stale` is non-null
  /// — moved into *stale, so the caller can Reprepare it (reusing its
  /// plan and unchanged bags) instead of planning from scratch. A hit
  /// refreshes the entry's LRU position.
  ///
  /// `count_miss = false` keeps a missing key out of Stats::misses:
  /// the single-flight miss path re-checks the cache (builder
  /// double-check after registering, waiters after the build) and
  /// those re-checks are the *same* logical miss the request's first
  /// Lookup already counted — misses stays "requests that missed",
  /// not "lookups that missed". Hits and invalidations always count.
  std::optional<api::PreparedQuery> Lookup(
      const std::string& key, const storage::Catalog& catalog,
      std::optional<api::PreparedQuery>* stale = nullptr,
      bool count_miss = true);

  /// Caches `prepared` (the master copy) under `key`, evicting the
  /// least-recently-used entry at capacity. If `key` is already cached
  /// with the same dependency versions the existing entry wins (two
  /// workers raced preparing the same text; the loser still runs its
  /// own instance); with different versions the newer entry replaces
  /// the stale one.
  void Insert(const std::string& key, api::PreparedQuery prepared);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t memory_budget_bytes() const { return memory_budget_bytes_; }
  uint64_t resident_bytes() const;
  Stats stats() const;

 private:
  struct Entry {
    std::string key;
    uint64_t bytes = 0;  // resident_bytes() charge at insert time
    api::PreparedQuery prepared;  // carries its dependency_versions()
  };
  using EntryList = std::list<Entry>;

  /// Drops the LRU tail entry. Caller holds mu_.
  void EvictBackLocked();

  const size_t capacity_;
  const uint64_t memory_budget_bytes_;
  mutable std::mutex mu_;
  EntryList entries_;  // front = most recently used
  std::unordered_map<std::string, EntryList::iterator> index_;
  Stats stats_;
};

}  // namespace adj::serve

#endif  // ADJ_SERVE_PREPARED_QUERY_CACHE_H_
