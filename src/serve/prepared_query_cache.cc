#include "serve/prepared_query_cache.h"

namespace adj::serve {

namespace {

// All of the plan's dependencies still at their prepared versions?
bool DepsFresh(const api::PreparedQuery& prepared,
               const storage::Catalog& catalog) {
  for (const auto& [name, version] : prepared.dependency_versions()) {
    if (catalog.VersionOf(name) != version) return false;
  }
  return true;
}

}  // namespace

std::optional<api::PreparedQuery> PreparedQueryCache::Lookup(
    const std::string& key, const storage::Catalog& catalog,
    std::optional<api::PreparedQuery>* stale, bool count_miss) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    if (count_miss) ++stats_.misses;
    return std::nullopt;
  }
  if (!DepsFresh(it->second->prepared, catalog)) {
    // A write moved one of the relations this plan reads: its
    // ExecutionContext aliases a pre-write version — never serve it.
    // Hand the entry to the caller instead of discarding it, so the
    // refresh can reuse the plan and the unchanged bags (Reprepare).
    if (stale != nullptr) *stale = std::move(it->second->prepared);
    stats_.resident_bytes -= it->second->bytes;
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    if (count_miss) ++stats_.misses;
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);  // LRU refresh
  ++stats_.hits;
  return entries_.front().prepared;
}

void PreparedQueryCache::EvictBackLocked() {
  stats_.resident_bytes -= entries_.back().bytes;
  index_.erase(entries_.back().key);
  entries_.pop_back();
  ++stats_.evictions;
}

void PreparedQueryCache::Insert(const std::string& key,
                                api::PreparedQuery prepared) {
  if (capacity_ == 0) return;
  const uint64_t bytes = prepared.resident_bytes();
  std::lock_guard<std::mutex> lock(mu_);
  if (memory_budget_bytes_ > 0 && bytes > memory_budget_bytes_) {
    // Larger than the whole budget: caching it would evict everything
    // and still overshoot. The caller keeps its own instance; later
    // requests for this key re-prepare.
    ++stats_.oversize_rejects;
    return;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->prepared.dependency_versions() ==
        prepared.dependency_versions()) {
      return;  // racing worker won — same dependency snapshot
    }
    stats_.resident_bytes -= it->second->bytes;
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
  }
  while (entries_.size() >= capacity_) EvictBackLocked();
  while (memory_budget_bytes_ > 0 && !entries_.empty() &&
         stats_.resident_bytes + bytes > memory_budget_bytes_) {
    EvictBackLocked();
  }
  entries_.push_front(Entry{key, bytes, std::move(prepared)});
  index_[key] = entries_.begin();
  stats_.resident_bytes += bytes;
}

void PreparedQueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  index_.clear();
  stats_.resident_bytes = 0;
}

size_t PreparedQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t PreparedQueryCache::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_.resident_bytes;
}

PreparedQueryCache::Stats PreparedQueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace adj::serve
