#include "serve/prepared_query_cache.h"

namespace adj::serve {

std::optional<api::PreparedQuery> PreparedQueryCache::Lookup(
    const std::string& key, uint64_t generation) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second->generation != generation) {
    // The catalog changed since this plan was prepared: its
    // ExecutionContext may alias replaced relations — drop, miss.
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
    ++stats_.misses;
    return std::nullopt;
  }
  entries_.splice(entries_.begin(), entries_, it->second);  // LRU refresh
  ++stats_.hits;
  return entries_.front().prepared;
}

void PreparedQueryCache::Insert(const std::string& key, uint64_t generation,
                                api::PreparedQuery prepared) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (it->second->generation == generation) return;  // racing worker won
    entries_.erase(it->second);
    index_.erase(it);
    ++stats_.invalidations;
  }
  while (entries_.size() >= capacity_) {
    index_.erase(entries_.back().key);
    entries_.pop_back();
    ++stats_.evictions;
  }
  entries_.push_front(Entry{key, generation, std::move(prepared)});
  index_[key] = entries_.begin();
}

void PreparedQueryCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  index_.clear();
}

size_t PreparedQueryCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

PreparedQueryCache::Stats PreparedQueryCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace adj::serve
