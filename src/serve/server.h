#ifndef ADJ_SERVE_SERVER_H_
#define ADJ_SERVE_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "api/api.h"
#include "common/status.h"
#include "core/options.h"
#include "dist/thread_pool.h"
#include "serve/admission_queue.h"
#include "serve/prepared_query_cache.h"

namespace adj::serve {

/// Tuning knobs for one serve::Server, fixed at construction.
struct ServerOptions {
  /// Worker threads executing admitted requests (dist::ThreadPool
  /// size). Each in-flight request occupies one worker.
  int worker_threads = 4;
  /// Admission-queue bound across all lanes. Submissions beyond it
  /// are rejected with ResourceExhausted — the backpressure signal.
  size_t queue_capacity = 64;
  /// The admission lanes: each has a name (per-lane stats label), a
  /// weighted-round-robin service weight (a backlogged lane receives
  /// weight/sum(weights) of the pops; weight 0 = background, served
  /// only when every weighted lane is empty), and an optional per-lane
  /// queue bound on top of queue_capacity (0 = total bound only). The
  /// default is the historical pair — lane 0 "single" for Submit, lane
  /// 1 "batch" for SubmitBatch, equal weight — so existing servers
  /// behave identically; requests pick a lane via
  /// RequestOptions::lane. Must be non-empty.
  std::vector<LaneConfig> lanes = {{"single", 1, 0}, {"batch", 1, 0}};
  /// PreparedQueryCache entry bound (0 disables plan caching).
  size_t cache_capacity = 32;
  /// Byte budget for what the plan cache keeps resident: every cached
  /// PreparedQuery is charged its resident_bytes() — the index
  /// artifacts its ExecutionContext pins plus its materialized bags.
  /// Exceeding the budget evicts LRU entries; a single entry larger
  /// than the budget is never cached. 0 = no byte budget (entry cap
  /// only). See docs/SERVING.md, "Memory budget".
  uint64_t cache_memory_budget_bytes = 0;
  /// Byte budget applied to the database catalog's shared
  /// storage::IndexCache — the bound-atom indexes and HCube shard
  /// artifacts that outlive individual requests (shard artifacts are
  /// *not* covered by cache_memory_budget_bytes: they are charged
  /// here, where idle ones can be LRU-evicted). 0 = unbounded.
  uint64_t index_cache_budget_bytes = 0;
  /// Deadline applied to requests that don't carry their own;
  /// infinity = none.
  double default_deadline_seconds =
      std::numeric_limits<double>::infinity();
  /// Engine options every request executes under (cluster size,
  /// sampling budget, base JoinLimits). A request deadline only ever
  /// *tightens* limits.max_seconds, never loosens it.
  core::EngineOptions engine;
};

/// Per-request knobs.
struct RequestOptions {
  /// Wall-clock budget from admission to completion; <= 0 uses the
  /// server default. Expiry — while queued, while planning a cold
  /// miss (the remaining budget bounds Engine::Plan itself), or
  /// mid-join (via wcoj::JoinLimits::max_seconds) — yields a
  /// DeadlineExceeded Result, distinct from queue-full rejection
  /// (ResourceExhausted).
  double deadline_seconds = 0.0;
  /// Admission lane (index into ServerOptions::lanes); -1 picks the
  /// call's default — lane 0 for Submit, lane 1 (when configured) for
  /// SubmitBatch. An index past the configured lanes is
  /// InvalidArgument at admission.
  int lane = -1;
};

/// Per-lane slice of the serving counters.
struct LaneStats {
  std::string name;      // ServerOptions::lanes[i].name
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served = 0;   // completed with an ok() Result
  uint64_t failed = 0;   // completed with an error Result
};

/// Aggregate serving counters (monotone since construction).
struct ServerStats {
  uint64_t accepted = 0;          // admitted into the queue
  uint64_t rejected = 0;          // queue-full backpressure rejections
  uint64_t served = 0;            // completed with an ok() Result
  uint64_t failed = 0;            // completed with an error Result
  uint64_t expired_in_queue = 0;  // deadline passed before execution
  uint64_t writes_applied = 0;    // successful Server::Apply calls
  uint64_t reprepared = 0;        // stale plans refreshed at delta cost
  // Single-flight planning: cold plan-cache misses that actually ran
  // Prepare/Reprepare vs. requests that joined a build already in
  // flight for their key. N concurrent cold misses for one key cost
  // plan_builds == 1, plan_waits == N-1 — the de-dup guarantee
  // bench_serve_load gates.
  uint64_t plan_builds = 0;
  uint64_t plan_waits = 0;
  // Deadlines blown inside the planning phase (the request's own
  // budget ran out while planning, or while waiting on another
  // request's in-flight build) — disjoint from expired_in_queue.
  uint64_t expired_planning = 0;
  std::vector<LaneStats> lanes;   // index-aligned with options().lanes
  PreparedQueryCache::Stats cache;
};

/// The async serving layer: one Server owns one api::Database and
/// amortizes the paper's plan-once / execute-many cost model across
/// requests from many clients.
///
/// Request lifecycle — Submit parses and normalizes the query text
/// (parse errors are returned immediately, costing no queue slot),
/// admits it into a bounded N-lane AdmissionQueue (weighted
/// round-robin between lanes per ServerOptions::lanes; full queue →
/// ResourceExhausted), and hands back a std::future<api::Result>. A
/// worker from the dist::ThreadPool then pops the request, checks its
/// deadline, looks up the PreparedQueryCache — fresh hit: runs a copy
/// of the cached plan; stale hit (a write moved one of the plan's
/// relations): refreshes it with Session::Reprepare at delta cost,
/// re-caches, runs; miss: plans and caches the master, runs.
///
/// QoS on the miss path (docs/SERVING.md, "QoS"):
///  - Single-flight planning: concurrent misses for one canonical key
///    share one Prepare/Reprepare — the first becomes the builder,
///    the rest block on its completion and then run from the cache
///    (ServerStats::plan_builds / plan_waits), mirroring the
///    storage::IndexCache pattern one layer down. A failed build
///    releases the waiters, and the next one retries as the builder.
///  - Deadline-bounded planning: a request's remaining budget becomes
///    EngineOptions::planning_budget_seconds for its own build, so a
///    cold miss that cannot plan in time returns DeadlineExceeded
///    *before* burning any join budget, with the partial planning
///    cost attributed on the Result (Result::PlanningFailure).
///
/// Per-request deadlines also map onto
/// wcoj::JoinLimits::max_seconds, so a request that exceeds its
/// budget mid-join completes with DeadlineExceeded. Queries with
/// a proper projection (not preparable today) fall through to direct
/// Session execution, uncached but still deadline-bounded.
///
/// Thread-safety: Submit / SubmitBatch / Execute / Apply / stats are
/// safe from any number of client threads — Apply self-synchronizes
/// against request execution with a reader/writer lock, so live
/// writes need no Pause/Drain choreography. database() is the one
/// unsynchronized mutable path — direct reloads still require
/// quiescing (Pause() + Drain(), or no requests in flight). Either
/// way the per-relation version counters take care of cached-plan
/// staleness, so a write needs no explicit cache flush. The
/// destructor drains: every admitted request's future is fulfilled
/// before destruction completes.
class Server {
 public:
  explicit Server(api::Database db, ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admits one query — onto lane 0 unless RequestOptions::lane picks
  /// another. Returns the future carrying its Result, or:
  /// InvalidArgument (unparseable text or bad lane index),
  /// ResourceExhausted (queue or lane full — retry later), Internal
  /// (server shutting down). Execution failures are folded into the
  /// Result, not the Status.
  StatusOr<std::future<api::Result>> Submit(
      const std::string& query_text, const RequestOptions& request = {});

  /// Admits `texts` onto the batch lane (lane 1 when configured, else
  /// lane 0; RequestOptions::lane overrides), all-or-nothing: if the
  /// queue cannot take the whole batch, nothing is admitted and the
  /// call returns ResourceExhausted. Futures align index-wise with
  /// `texts`.
  StatusOr<std::vector<std::future<api::Result>>> SubmitBatch(
      const std::vector<std::string>& texts,
      const RequestOptions& request = {});

  /// Submit + wait: the synchronous convenience used by tests and the
  /// demo. Admission failures are folded into the returned Result.
  api::Result Execute(const std::string& query_text,
                      const RequestOptions& request = {});

  /// Pauses dequeuing: already-running requests finish, queued ones
  /// wait (their deadlines keep ticking). Admission stays open.
  void Pause();
  void Resume();

  /// Resumes if paused, then blocks until every admitted request has
  /// been executed and its future fulfilled. The quiesce point for
  /// database() mutations.
  void Drain();

  /// Applies a write batch to the served database without any
  /// Pause/Drain choreography: a reader/writer lock serializes it
  /// against in-flight request execution (requests hold the read side;
  /// Apply takes the write side, so it waits for running requests and
  /// blocks new ones only for the duration of the batch — typically
  /// microseconds, since tuple writes are O(delta) delta appends).
  /// Admission stays open throughout. Cached plans whose relations the
  /// batch touched are refreshed on their next request via
  /// api::Session::Reprepare (plan reused, delta-patched indexes, see
  /// ServerStats::reprepared); plans over untouched relations stay
  /// cached and keep hitting.
  Status Apply(const storage::WriteBatch& batch);

  /// The served database. Mutating it directly (LoadBuiltin /
  /// AddRelation / LoadEdgeList) is only safe with no request in
  /// flight — call Drain() first and don't admit concurrently; prefer
  /// Apply, which synchronizes itself. Each mutation bumps the touched
  /// relations' versions, invalidating exactly the affected cache
  /// entries on their next lookup.
  api::Database& database() { return db_; }
  const api::Database& database() const { return db_; }

  const ServerOptions& options() const { return options_; }
  ServerStats stats() const;

 private:
  struct Request {
    std::string key;   // normalized cache key (canonical rendering)
    std::string text;  // original text, what Prepare/Run parse
    int lane = 0;      // admission lane (index into options().lanes)
    bool proper_projection = false;  // not preparable → direct path
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    std::promise<api::Result> promise;
  };

  /// One in-flight plan build, shared by the builder and every waiter
  /// for the same key. Lives in building_ while the build runs; the
  /// builder removes it and signals done before fulfilling anything.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;  // build finished (either way)     — guarded by mu
    bool ok = false;    // build succeeded and was cached  — guarded by mu
  };

  StatusOr<std::future<api::Result>> Enqueue(int lane,
                                             const std::string& text,
                                             const RequestOptions& request);
  /// Parse + normalize + resolve the deadline (request's, else the
  /// server default; values beyond ~a year count as none).
  StatusOr<Request> MakeRequest(const std::string& text,
                                const RequestOptions& request) const;
  /// One admitted request == one pool task running this: wait out a
  /// pause, pop under fairness, execute, fulfill the promise.
  void ServeOne();
  api::Result ExecuteRequest(Request& req);
  /// The single-flight miss path: build (or wait for) the plan for
  /// req.key, leave the master cached, and run it. `stale` is the
  /// invalidated entry the caller's Lookup handed over (if any) — the
  /// builder Reprepares it at delta cost instead of planning fresh.
  api::Result PlanAndRun(Request& req, wcoj::JoinLimits limits,
                         std::optional<api::PreparedQuery> stale);

  api::Database db_;
  const ServerOptions options_;
  PreparedQueryCache cache_;

  // Serializes Apply (write side) against request execution (read
  // side): everything a request reads through the catalog is immutable
  // once published, so concurrent readers are free, and the write side
  // only excludes them for the O(delta) catalog mutation itself.
  std::shared_mutex catalog_mu_;

  mutable std::mutex mu_;
  std::condition_variable resume_cv_;
  AdmissionQueue<Request> queue_;  // guarded by mu_
  bool paused_ = false;            // guarded by mu_
  bool stopping_ = false;          // guarded by mu_
  ServerStats stats_;              // guarded by mu_ (cache part lives in cache_)
  // Single-flight registry: canonical key → the build in flight for
  // it. Guarded by mu_; the InFlight's own fields by its mu.
  std::unordered_map<std::string, std::shared_ptr<InFlight>> building_;

  // Last member: destroyed first, so its destructor drains all pending
  // ServeOne tasks while the queue/cache/db above are still alive.
  dist::ThreadPool pool_;
};

}  // namespace adj::serve

#endif  // ADJ_SERVE_SERVER_H_
