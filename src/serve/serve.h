#ifndef ADJ_SERVE_SERVE_H_
#define ADJ_SERVE_SERVE_H_

/// The async serving layer — include this one header to run a server
/// (see docs/SERVING.md for the full semantics):
///
///   api::Database db = *api::Database::OpenBuiltin("LJ", 0.2);
///   serve::ServerOptions options;
///   options.worker_threads = 8;
///   options.queue_capacity = 128;
///   serve::Server server(std::move(db), options);
///
///   auto future = server.Submit("G(a,b) G(b,c) G(a,c)",
///                               {.deadline_seconds = 0.5});
///   if (future.ok()) api::Result r = future->get();
///
/// One Server owns one api::Database and serves many clients: requests
/// are admitted onto a bounded two-lane queue (reject-with-backpressure
/// when full, round-robin fairness between the single-query and batch
/// lanes), executed by a dist::ThreadPool, and answered from a bounded
/// LRU cache of prepared plans keyed by normalized query text — the
/// first request for a query pays planning, repeats run the cached
/// ExecutionContext at O(query) cost until a catalog reload bumps the
/// generation counter and invalidates the entry.
#include "serve/admission_queue.h"
#include "serve/prepared_query_cache.h"
#include "serve/server.h"

#endif  // ADJ_SERVE_SERVE_H_
