#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "core/spj.h"
#include "query/query.h"
#include "wcoj/leapfrog.h"

namespace adj::serve {

using SteadyClock = std::chrono::steady_clock;

Server::Server(api::Database db, ServerOptions options)
    : db_(std::move(db)),
      options_(std::move(options)),
      session_(db_.OpenSession()),
      cache_(options_.cache_capacity, options_.cache_memory_budget_bytes),
      queue_(options_.queue_capacity),
      pool_(options_.worker_threads) {
  session_.options() = options_.engine;
  if (options_.index_cache_budget_bytes > 0) {
    db_.catalog().index_cache().set_budget_bytes(
        options_.index_cache_budget_bytes);
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  // Wake workers parked on a pause so the pool destructor (run next,
  // as pool_ is the last member) can drain every admitted request —
  // no future is ever left unfulfilled.
  resume_cv_.notify_all();
}

StatusOr<Server::Request> Server::MakeRequest(
    const std::string& text, const RequestOptions& request) const {
  // Parse up front: malformed text is rejected at admission (costing
  // the client no queue slot), and the canonical rendering of the
  // parsed query becomes the cache key, so lexical variants of one
  // query ("G(a,b)G(b,c)", "G(a, b)  G(b , c)") share a cached plan.
  StatusOr<core::SpjQuery> spj = core::ParseSpj(text);
  if (!spj.ok()) return spj.status();
  Request req;
  req.key = spj->ToString();
  req.text = text;
  req.proper_projection = spj->HasProperProjection();
  const double deadline_seconds = request.deadline_seconds > 0
                                      ? request.deadline_seconds
                                      : options_.default_deadline_seconds;
  // Deadlines beyond ~a year mean "no deadline" — and stay far from
  // overflowing the int64-nanosecond duration_cast below.
  constexpr double kMaxDeadlineSeconds = 3.15e7;
  if (std::isfinite(deadline_seconds) &&
      deadline_seconds < kMaxDeadlineSeconds) {
    req.has_deadline = true;
    req.deadline = SteadyClock::now() +
                   std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(deadline_seconds));
  }
  return req;
}

StatusOr<std::future<api::Result>> Server::Enqueue(
    Lane lane, const std::string& text, const RequestOptions& request) {
  StatusOr<Request> req = MakeRequest(text, request);
  if (!req.ok()) return req.status();
  std::future<api::Result> future = req->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Internal("server is shutting down");
    if (!queue_.TryPush(lane, std::move(req.value()))) {
      ++stats_.rejected;
      return Status::ResourceExhausted(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) +
          "): backpressure — retry later");
    }
    ++stats_.accepted;
  }
  pool_.Submit([this] { ServeOne(); });
  return future;
}

StatusOr<std::future<api::Result>> Server::Submit(
    const std::string& query_text, const RequestOptions& request) {
  return Enqueue(Lane::kSingle, query_text, request);
}

StatusOr<std::vector<std::future<api::Result>>> Server::SubmitBatch(
    const std::vector<std::string>& texts, const RequestOptions& request) {
  std::vector<Request> requests;
  std::vector<std::future<api::Result>> futures;
  requests.reserve(texts.size());
  futures.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    StatusOr<Request> req = MakeRequest(texts[i], request);
    if (!req.ok()) {
      return Status(req.status().code(), "batch query #" + std::to_string(i) +
                                             ": " + req.status().message());
    }
    futures.push_back(req->promise.get_future());
    requests.push_back(std::move(req.value()));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Internal("server is shutting down");
    // All-or-nothing: a half-admitted batch helps nobody.
    if (!queue_.CanAccept(requests.size())) {
      stats_.rejected += requests.size();
      return Status::ResourceExhausted(
          "admission queue cannot take a batch of " +
          std::to_string(requests.size()) + " (capacity " +
          std::to_string(options_.queue_capacity) +
          "): backpressure — retry later");
    }
    for (Request& req : requests) {
      queue_.TryPush(Lane::kBatch, std::move(req));  // CanAccept guaranteed
      ++stats_.accepted;
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    pool_.Submit([this] { ServeOne(); });
  }
  return futures;
}

api::Result Server::Execute(const std::string& query_text,
                            const RequestOptions& request) {
  StatusOr<std::future<api::Result>> future = Submit(query_text, request);
  if (!future.ok()) return api::Result(future.status());
  return future->get();
}

void Server::ServeOne() {
  Request req;
  {
    std::unique_lock<std::mutex> lock(mu_);
    resume_cv_.wait(lock, [this] { return !paused_ || stopping_; });
    std::optional<std::pair<Lane, Request>> popped = queue_.Pop();
    if (!popped) return;  // defensive: one task is submitted per push
    req = std::move(popped->second);
  }
  api::Result result = ExecuteRequest(req);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok()) {
      ++stats_.served;
    } else {
      ++stats_.failed;
    }
  }
  req.promise.set_value(std::move(result));
}

api::Result Server::ExecuteRequest(Request& req) {
  double remaining = std::numeric_limits<double>::infinity();
  if (req.has_deadline) {
    remaining =
        std::chrono::duration<double>(req.deadline - SteadyClock::now())
            .count();
    if (remaining <= 0) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.expired_in_queue;
      }
      return api::Result(Status::DeadlineExceeded(
          "deadline expired while queued — tighten admission or extend the "
          "request deadline"));
    }
  }
  // The request's remaining budget only ever tightens the server-wide
  // time limit; mid-join expiry then surfaces as DeadlineExceeded from
  // the executor itself.
  wcoj::JoinLimits limits = options_.engine.limits;
  limits.max_seconds = std::min(limits.max_seconds, remaining);

  // Read side of the write lock: Apply waits for requests in flight
  // and no request starts while a batch is mid-application.
  std::shared_lock<std::shared_mutex> read_catalog(catalog_mu_);

  if (req.proper_projection) {
    // Prepare() rejects proper projections, so there is no plan to
    // cache — run directly, still deadline-bounded.
    api::Session session = db_.OpenSession();
    session.options() = options_.engine;
    session.options().limits = limits;
    return session.Run(req.text);
  }

  std::optional<api::PreparedQuery> stale;
  std::optional<api::PreparedQuery> prepared =
      cache_.Lookup(req.key, db_.catalog(), &stale);
  if (!prepared) {
    // Stale hit: a write moved one of the plan's relations — refresh
    // at delta cost (plan reused, unchanged bags aliased, written
    // relations' indexes delta-patched) instead of re-planning. Falls
    // back to a full Prepare if the refresh fails (e.g. a relation the
    // plan reads was replaced with an incompatible one).
    StatusOr<api::PreparedQuery> built =
        stale ? session_.Reprepare(*stale) : session_.Prepare(req.text);
    if (stale && built.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.reprepared;
    }
    if (stale && !built.ok()) built = session_.Prepare(req.text);
    if (!built.ok()) return api::Result(built.status());
    // The master copy stays cached; this request runs its own copy.
    // Copies share the charge-planning-once flag, so whichever copy
    // runs first pays optimize_s/precompute_s and every later request
    // for this key reports both as zero.
    cache_.Insert(req.key, *built);
    prepared = std::move(built.value());
  }
  return prepared->Run(limits);
}

Status Server::Apply(const storage::WriteBatch& batch) {
  // Write side: excludes request execution for exactly the O(delta)
  // catalog mutation. Cache entries are not flushed — the per-relation
  // versions the batch advances invalidate precisely the plans that
  // read a written relation, on their next lookup.
  std::unique_lock<std::shared_mutex> write_catalog(catalog_mu_);
  Status status = db_.Apply(batch);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.writes_applied;
  }
  return status;
}

void Server::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Server::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  resume_cv_.notify_all();
}

void Server::Drain() {
  Resume();
  pool_.WaitIdle();
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  out.cache = cache_.stats();
  return out;
}

}  // namespace adj::serve
