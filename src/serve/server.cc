#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "common/timer.h"
#include "core/spj.h"
#include "query/query.h"
#include "wcoj/leapfrog.h"

namespace adj::serve {

using SteadyClock = std::chrono::steady_clock;

namespace {

std::vector<LaneConfig> LanesOrDefault(const ServerOptions& options) {
  if (!options.lanes.empty()) return options.lanes;
  return {{"default", 1, 0}};
}

/// Seconds until `req.deadline`, +inf when the request has none.
double RemainingSeconds(const bool has_deadline,
                        const SteadyClock::time_point deadline) {
  if (!has_deadline) return std::numeric_limits<double>::infinity();
  return std::chrono::duration<double>(deadline - SteadyClock::now()).count();
}

}  // namespace

Server::Server(api::Database db, ServerOptions options)
    : db_(std::move(db)),
      options_(std::move(options)),
      cache_(options_.cache_capacity, options_.cache_memory_budget_bytes),
      queue_(options_.queue_capacity, LanesOrDefault(options_)),
      pool_(options_.worker_threads) {
  stats_.lanes.resize(size_t(queue_.num_lanes()));
  for (int i = 0; i < queue_.num_lanes(); ++i) {
    stats_.lanes[size_t(i)].name = queue_.lane_config(i).name;
  }
  if (options_.index_cache_budget_bytes > 0) {
    db_.catalog().index_cache().set_budget_bytes(
        options_.index_cache_budget_bytes);
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  // Wake workers parked on a pause so the pool destructor (run next,
  // as pool_ is the last member) can drain every admitted request —
  // no future is ever left unfulfilled.
  resume_cv_.notify_all();
}

StatusOr<Server::Request> Server::MakeRequest(
    const std::string& text, const RequestOptions& request) const {
  // Parse up front: malformed text is rejected at admission (costing
  // the client no queue slot), and the canonical rendering of the
  // parsed query becomes the cache key, so lexical variants of one
  // query ("G(a,b)G(b,c)", "G(a, b)  G(b , c)") share a cached plan.
  StatusOr<core::SpjQuery> spj = core::ParseSpj(text);
  if (!spj.ok()) return spj.status();
  Request req;
  req.key = spj->ToString();
  req.text = text;
  req.proper_projection = spj->HasProperProjection();
  const double deadline_seconds = request.deadline_seconds > 0
                                      ? request.deadline_seconds
                                      : options_.default_deadline_seconds;
  // Deadlines beyond ~a year mean "no deadline" — and stay far from
  // overflowing the int64-nanosecond duration_cast below.
  constexpr double kMaxDeadlineSeconds = 3.15e7;
  if (std::isfinite(deadline_seconds) &&
      deadline_seconds < kMaxDeadlineSeconds) {
    req.has_deadline = true;
    req.deadline = SteadyClock::now() +
                   std::chrono::duration_cast<SteadyClock::duration>(
                       std::chrono::duration<double>(deadline_seconds));
  }
  return req;
}

StatusOr<std::future<api::Result>> Server::Enqueue(
    int lane, const std::string& text, const RequestOptions& request) {
  if (!queue_.ValidLane(lane)) {
    return Status::InvalidArgument(
        "lane " + std::to_string(lane) + " out of range (server has " +
        std::to_string(queue_.num_lanes()) + " lanes)");
  }
  StatusOr<Request> req = MakeRequest(text, request);
  if (!req.ok()) return req.status();
  req->lane = lane;
  std::future<api::Result> future = req->promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Internal("server is shutting down");
    if (!queue_.TryPush(lane, std::move(req.value()))) {
      ++stats_.rejected;
      ++stats_.lanes[size_t(lane)].rejected;
      return Status::ResourceExhausted(
          "admission queue full (capacity " +
          std::to_string(options_.queue_capacity) + ", lane \"" +
          queue_.lane_config(lane).name +
          "\"): backpressure — retry later");
    }
    ++stats_.accepted;
    ++stats_.lanes[size_t(lane)].accepted;
  }
  pool_.Submit([this] { ServeOne(); });
  return future;
}

StatusOr<std::future<api::Result>> Server::Submit(
    const std::string& query_text, const RequestOptions& request) {
  const int lane = request.lane >= 0 ? request.lane : Lane::kSingle;
  return Enqueue(lane, query_text, request);
}

StatusOr<std::vector<std::future<api::Result>>> Server::SubmitBatch(
    const std::vector<std::string>& texts, const RequestOptions& request) {
  const int lane = request.lane >= 0
                       ? request.lane
                       : std::min(int(Lane::kBatch), queue_.num_lanes() - 1);
  if (!queue_.ValidLane(lane)) {
    return Status::InvalidArgument(
        "lane " + std::to_string(lane) + " out of range (server has " +
        std::to_string(queue_.num_lanes()) + " lanes)");
  }
  std::vector<Request> requests;
  std::vector<std::future<api::Result>> futures;
  requests.reserve(texts.size());
  futures.reserve(texts.size());
  for (size_t i = 0; i < texts.size(); ++i) {
    StatusOr<Request> req = MakeRequest(texts[i], request);
    if (!req.ok()) {
      return Status(req.status().code(), "batch query #" + std::to_string(i) +
                                             ": " + req.status().message());
    }
    req->lane = lane;
    futures.push_back(req->promise.get_future());
    requests.push_back(std::move(req.value()));
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return Status::Internal("server is shutting down");
    // All-or-nothing: a half-admitted batch helps nobody.
    if (!queue_.CanAccept(lane, requests.size())) {
      stats_.rejected += requests.size();
      stats_.lanes[size_t(lane)].rejected += requests.size();
      return Status::ResourceExhausted(
          "admission queue cannot take a batch of " +
          std::to_string(requests.size()) + " (capacity " +
          std::to_string(options_.queue_capacity) + ", lane \"" +
          queue_.lane_config(lane).name +
          "\"): backpressure — retry later");
    }
    for (Request& req : requests) {
      queue_.TryPush(lane, std::move(req));  // CanAccept guaranteed
      ++stats_.accepted;
      ++stats_.lanes[size_t(lane)].accepted;
    }
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    pool_.Submit([this] { ServeOne(); });
  }
  return futures;
}

api::Result Server::Execute(const std::string& query_text,
                            const RequestOptions& request) {
  StatusOr<std::future<api::Result>> future = Submit(query_text, request);
  if (!future.ok()) return api::Result(future.status());
  return future->get();
}

void Server::ServeOne() {
  Request req;
  {
    std::unique_lock<std::mutex> lock(mu_);
    resume_cv_.wait(lock, [this] { return !paused_ || stopping_; });
    std::optional<std::pair<int, Request>> popped = queue_.Pop();
    if (!popped) return;  // defensive: one task is submitted per push
    req = std::move(popped->second);
  }
  api::Result result = ExecuteRequest(req);
  {
    std::lock_guard<std::mutex> lock(mu_);
    LaneStats& lane = stats_.lanes[size_t(req.lane)];
    if (result.ok()) {
      ++stats_.served;
      ++lane.served;
    } else {
      ++stats_.failed;
      ++lane.failed;
    }
  }
  req.promise.set_value(std::move(result));
}

api::Result Server::ExecuteRequest(Request& req) {
  const double remaining = RemainingSeconds(req.has_deadline, req.deadline);
  if (remaining <= 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.expired_in_queue;
    }
    return api::Result(Status::DeadlineExceeded(
        "deadline expired while queued — tighten admission or extend the "
        "request deadline"));
  }
  // The request's remaining budget only ever tightens the server-wide
  // time limit; mid-join expiry then surfaces as DeadlineExceeded from
  // the executor itself.
  wcoj::JoinLimits limits = options_.engine.limits;
  limits.max_seconds = std::min(limits.max_seconds, remaining);

  // Read side of the write lock: Apply waits for requests in flight
  // and no request starts while a batch is mid-application.
  std::shared_lock<std::shared_mutex> read_catalog(catalog_mu_);

  if (req.proper_projection) {
    // Prepare() rejects proper projections, so there is no plan to
    // cache — run directly, still deadline-bounded.
    api::Session session = db_.OpenSession();
    session.options() = options_.engine;
    session.options().limits = limits;
    return session.Run(req.text);
  }

  std::optional<api::PreparedQuery> stale;
  std::optional<api::PreparedQuery> prepared =
      cache_.Lookup(req.key, db_.catalog(), &stale);
  if (prepared) return prepared->Run(limits);
  return PlanAndRun(req, limits, std::move(stale));
}

api::Result Server::PlanAndRun(Request& req, wcoj::JoinLimits limits,
                               std::optional<api::PreparedQuery> stale) {
  // Single-flight: at most one Prepare/Reprepare per canonical key is
  // in flight at a time. The first miss registers as the builder;
  // every concurrent miss for the same key blocks on the builder's
  // InFlight and then re-reads the cache. A failed build releases the
  // waiters to retry — the next one through becomes the new builder —
  // so failures are re-attempted, never cached, exactly like the
  // IndexCache single-flight one layer down. Each wait is bounded by
  // the waiter's own deadline.
  for (;;) {
    std::shared_ptr<InFlight> flight;
    bool builder = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = building_.find(req.key);
      if (it == building_.end()) {
        flight = std::make_shared<InFlight>();
        building_.emplace(req.key, flight);
        builder = true;
      } else {
        flight = it->second;
        ++stats_.plan_waits;
      }
    }

    if (!builder) {
      std::unique_lock<std::mutex> fl(flight->mu);
      const bool finished =
          req.has_deadline
              ? flight->cv.wait_until(fl, req.deadline,
                                      [&] { return flight->done; })
              : (flight->cv.wait(fl, [&] { return flight->done; }), true);
      fl.unlock();
      if (!finished) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.expired_planning;
        return api::Result(Status::DeadlineExceeded(
            "deadline expired while another request was planning this "
            "query"));
      }
      // Builder done: on success the plan is cached — loop, hit, run.
      // On failure loop anyway: the re-lookup misses and this request
      // may become the retrying builder (its own deadline and the
      // planning budget bound the retries). A stale entry surfacing
      // here (the build landed, then a write staled it) is kept for
      // that retry's Reprepare.
      std::optional<api::PreparedQuery> waiter_stale;
      std::optional<api::PreparedQuery> prepared = cache_.Lookup(
          req.key, db_.catalog(), &waiter_stale, /*count_miss=*/false);
      if (prepared) {
        // The wait ate into the deadline; run with what is left.
        if (req.has_deadline) {
          const double left =
              RemainingSeconds(req.has_deadline, req.deadline);
          if (left <= 0) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.expired_planning;
            return api::Result(Status::DeadlineExceeded(
                "deadline expired while waiting on the shared plan "
                "build"));
          }
          limits.max_seconds = std::min(limits.max_seconds, left);
        }
        return prepared->Run(limits);
      }
      if (waiter_stale) stale = std::move(waiter_stale);
      continue;
    }

    // Builder path. Re-check the cache now that the key is owned: a
    // previous builder may have inserted between this request's miss
    // and its registration — then this flight is a no-op to release.
    // A stale entry surfacing now supersedes one carried in from the
    // caller's earlier Lookup (it was prepared later).
    std::optional<api::PreparedQuery> fresh_stale;
    std::optional<api::PreparedQuery> prepared = cache_.Lookup(
        req.key, db_.catalog(), &fresh_stale, /*count_miss=*/false);
    if (fresh_stale) stale = std::move(fresh_stale);
    StatusOr<api::PreparedQuery> built = Status::OK();
    double build_seconds = 0.0;
    bool reprepared = false;
    if (!prepared) {
      const double remaining =
          RemainingSeconds(req.has_deadline, req.deadline);
      if (remaining <= 0) {
        built = Status::DeadlineExceeded(
            "deadline expired before planning could start");
      } else {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.plan_builds;
        }
        // The remaining deadline becomes the planning budget: a cold
        // miss that cannot plan in time dies inside Engine::Plan with
        // DeadlineExceeded — before any join work — and the time it
        // burned is attributed below.
        api::Session session = db_.OpenSession();
        session.options() = options_.engine;
        session.options().planning_budget_seconds = std::min(
            session.options().planning_budget_seconds, remaining);
        WallTimer build_timer;
        // Stale hit: a write moved one of the plan's relations —
        // refresh at delta cost (plan reused, unchanged bags aliased,
        // written relations' indexes delta-patched) instead of
        // re-planning. Falls back to a full Prepare if the refresh
        // fails (e.g. a relation the plan reads was replaced with an
        // incompatible one).
        built = stale ? session.Reprepare(*stale) : session.Prepare(req.text);
        reprepared = stale && built.ok();
        if (stale && !built.ok()) built = session.Prepare(req.text);
        build_seconds = build_timer.Seconds();
      }
      if (built.ok()) {
        // The master copy stays cached; this request runs its own
        // copy. Copies share the charge-planning-once flag, so
        // whichever copy runs first pays optimize_s/precompute_s and
        // every later request for this key reports both as zero.
        cache_.Insert(req.key, *built);
        prepared = std::move(built.value());
      }
    }

    // Release the flight on every builder exit: erase the registry
    // entry first (so a post-failure retrier can re-register), then
    // signal the waiters.
    {
      std::lock_guard<std::mutex> lock(mu_);
      building_.erase(req.key);
      if (reprepared) ++stats_.reprepared;
    }
    {
      std::lock_guard<std::mutex> fl(flight->mu);
      flight->done = true;
      flight->ok = prepared.has_value();
    }
    flight->cv.notify_all();

    if (!prepared) {
      if (built.status().code() == StatusCode::kDeadlineExceeded) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.expired_planning;
      }
      return api::Result::PlanningFailure(built.status(), build_seconds);
    }
    // Planning may have consumed most of the deadline; re-derive the
    // join budget so the run gets only what is actually left — and a
    // fully consumed deadline returns here without burning any of it.
    if (req.has_deadline) {
      const double left = RemainingSeconds(req.has_deadline, req.deadline);
      if (left <= 0) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.expired_planning;
        }
        return api::Result::PlanningFailure(
            Status::DeadlineExceeded(
                "deadline expired during planning — the plan is cached "
                "for the next request"),
            build_seconds);
      }
      limits.max_seconds = std::min(limits.max_seconds, left);
    }
    return prepared->Run(limits);
  }
}

Status Server::Apply(const storage::WriteBatch& batch) {
  // Write side: excludes request execution for exactly the O(delta)
  // catalog mutation. Cache entries are not flushed — the per-relation
  // versions the batch advances invalidate precisely the plans that
  // read a written relation, on their next lookup.
  std::unique_lock<std::shared_mutex> write_catalog(catalog_mu_);
  Status status = db_.Apply(batch);
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.writes_applied;
  }
  return status;
}

void Server::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Server::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  resume_cv_.notify_all();
}

void Server::Drain() {
  Resume();
  pool_.WaitIdle();
}

ServerStats Server::stats() const {
  ServerStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  out.cache = cache_.stats();
  return out;
}

}  // namespace adj::serve
