#ifndef ADJ_SERVE_ADMISSION_QUEUE_H_
#define ADJ_SERVE_ADMISSION_QUEUE_H_

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

namespace adj::serve {

/// Admission lanes: interactive single queries vs. bulk batch work.
/// Keeping them separate is what lets the server stay fair — a large
/// batch admitted first must not starve the single-query lane.
enum class Lane { kSingle = 0, kBatch = 1 };

/// Bounded two-lane FIFO with round-robin fairness between lanes —
/// serve::Server's admission queue. TryPush rejects when the *total*
/// across both lanes is at capacity (the reject-with-backpressure
/// signal); Pop alternates lanes whenever both are non-empty, so batch
/// and single-query admission interleave 1:1 regardless of arrival
/// order, and falls through to the non-empty lane otherwise.
///
/// Not thread-safe: the owner serializes access (serve::Server guards
/// it with the server mutex). Kept as a standalone template so the
/// fairness and capacity policy is unit-testable without a server.
template <typename T>
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

  size_t capacity() const { return capacity_; }
  size_t size() const { return lanes_[0].size() + lanes_[1].size(); }
  bool empty() const { return size() == 0; }

  /// Room for `n` more items without exceeding capacity — the
  /// all-or-nothing admission check for batches.
  bool CanAccept(size_t n) const { return size() + n <= capacity_; }

  /// Enqueues onto `lane`; false (item not consumed) when full.
  bool TryPush(Lane lane, T item) {
    if (!CanAccept(1)) return false;
    lanes_[int(lane)].push_back(std::move(item));
    return true;
  }

  /// Dequeues the next item under round-robin fairness, with the lane
  /// it came from; nullopt when empty.
  std::optional<std::pair<Lane, T>> Pop() {
    Lane lane = preferred_;
    if (lanes_[int(lane)].empty()) lane = Other(lane);
    std::deque<T>& q = lanes_[int(lane)];
    if (q.empty()) return std::nullopt;
    T item = std::move(q.front());
    q.pop_front();
    // Alternate: whichever lane served, the other goes first next time.
    preferred_ = Other(lane);
    return std::make_pair(lane, std::move(item));
  }

 private:
  static Lane Other(Lane lane) {
    return lane == Lane::kSingle ? Lane::kBatch : Lane::kSingle;
  }

  size_t capacity_;
  std::deque<T> lanes_[2];
  Lane preferred_ = Lane::kSingle;
};

}  // namespace adj::serve

#endif  // ADJ_SERVE_ADMISSION_QUEUE_H_
