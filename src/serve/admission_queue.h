#ifndef ADJ_SERVE_ADMISSION_QUEUE_H_
#define ADJ_SERVE_ADMISSION_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace adj::serve {

/// Default lane indexes for the historical two-lane configuration:
/// interactive single queries vs. bulk batch work. Lanes are plain
/// indexes now — servers may configure any number of them — but the
/// default ServerOptions keep these two, so the old names stay.
enum Lane : int { kSingle = 0, kBatch = 1 };

/// One admission lane's policy knobs.
struct LaneConfig {
  std::string name;     // stats / log label ("interactive", "batch", ...)
  uint32_t weight = 1;  // service share per scheduling round; 0 = a
                        // background lane, served only when every
                        // weighted lane is empty
  size_t capacity = 0;  // per-lane bound on queued items; 0 = bounded
                        // only by the queue-wide capacity
};

/// Bounded N-lane FIFO with weighted round-robin service between lanes
/// — serve::Server's admission queue. Generalizes the original strict
/// 1:1 two-lane alternation: each lane carries a `weight`, and Pop
/// serves lanes in cyclic turns, up to `weight` items per turn
/// (deficit round-robin with unit-cost items, so integer weights need
/// no fractional credit). While every lane stays backlogged, lane i
/// receives exactly weight_i of every sum(weights) consecutive pops,
/// and the head item of a lane with weight > 0 waits at most
/// sum(other lanes' weights) pops — the starvation bound
/// admission_queue_test proves.
///
/// An empty lane forfeits its turn without banking credit: service it
/// missed while empty can never come back as a burst, and — the
/// regression the fallthrough tests pin down — skipping an empty lane
/// must not hand the lane that was served in its place a second turn.
/// Zero-weight lanes are scavengers: they are served (round-robin
/// among themselves) only when no weighted lane has work.
///
/// Capacity: TryPush rejects when the *total* across all lanes is at
/// capacity (the reject-with-backpressure signal) or when the item's
/// lane is at its own optional per-lane bound; CanAccept(lane, n) is
/// the all-or-nothing admission check batches use.
///
/// Not thread-safe: the owner serializes access (serve::Server guards
/// it with the server mutex). Kept as a standalone template so the
/// fairness and capacity policy is unit-testable without a server.
template <typename T>
class AdmissionQueue {
 public:
  /// Back-compat two-lane configuration: "single" and "batch", equal
  /// weight, no per-lane caps — byte-for-byte the old 1:1 alternation.
  explicit AdmissionQueue(size_t capacity)
      : AdmissionQueue(capacity,
                       {{"single", 1, 0}, {"batch", 1, 0}}) {}

  AdmissionQueue(size_t capacity, std::vector<LaneConfig> lanes)
      : capacity_(capacity), configs_(std::move(lanes)) {
    if (configs_.empty()) configs_.push_back({"default", 1, 0});
    // All-zero weights would starve everything; treat as plain
    // round-robin.
    bool any_weighted = false;
    for (const LaneConfig& lane : configs_) any_weighted |= lane.weight > 0;
    if (!any_weighted) {
      for (LaneConfig& lane : configs_) lane.weight = 1;
    }
    // Sized construction, not growth: T may be move-only (the server
    // queues promise-carrying requests), which rules out any vector
    // relocation of the deques.
    queues_ = std::vector<std::deque<T>>(configs_.size());
    budget_ = configs_[0].weight;
  }

  size_t capacity() const { return capacity_; }
  int num_lanes() const { return int(configs_.size()); }
  const LaneConfig& lane_config(int lane) const {
    return configs_[size_t(lane)];
  }

  size_t size() const {
    size_t total = 0;
    for (const std::deque<T>& q : queues_) total += q.size();
    return total;
  }
  size_t lane_size(int lane) const { return queues_[size_t(lane)].size(); }
  bool empty() const { return size() == 0; }

  bool ValidLane(int lane) const {
    return lane >= 0 && lane < num_lanes();
  }

  /// Room for `n` more items on `lane` without exceeding the total
  /// capacity or the lane's own bound — the all-or-nothing admission
  /// check for batches.
  bool CanAccept(int lane, size_t n) const {
    if (!ValidLane(lane)) return false;
    const LaneConfig& config = configs_[size_t(lane)];
    if (config.capacity > 0 &&
        queues_[size_t(lane)].size() + n > config.capacity) {
      return false;
    }
    return size() + n <= capacity_;
  }

  /// Enqueues onto `lane`; false (item not consumed) when full or the
  /// lane index is out of range.
  bool TryPush(int lane, T item) {
    if (!CanAccept(lane, 1)) return false;
    queues_[size_t(lane)].push_back(std::move(item));
    return true;
  }

  /// Dequeues the next item under weighted round-robin, with the lane
  /// it came from; nullopt when empty.
  std::optional<std::pair<int, T>> Pop() {
    if (empty()) return std::nullopt;
    // Serve the turn lane while it has both work and budget. An empty
    // (or exhausted) lane passes the turn on; the pass grants the next
    // lane a fresh `weight` budget — never the lane served in the
    // empty lane's place, which is what kept the old two-lane
    // fallthrough honest and what the N-lane form must preserve.
    const int n = num_lanes();
    for (int scanned = 0; scanned <= 2 * n; ++scanned) {
      if (budget_ > 0 && !queues_[size_t(cursor_)].empty()) {
        --budget_;
        return PopFrom(cursor_);
      }
      cursor_ = (cursor_ + 1) % n;
      budget_ = configs_[size_t(cursor_)].weight;
    }
    // Every lane with work has weight 0: scavenge round-robin among
    // the background lanes, starting past the cursor so they share.
    for (int step = 1; step <= n; ++step) {
      const int lane = (cursor_ + step) % n;
      if (!queues_[size_t(lane)].empty()) return PopFrom(lane);
    }
    return std::nullopt;  // unreachable: size() > 0 checked above
  }

 private:
  std::optional<std::pair<int, T>> PopFrom(int lane) {
    std::deque<T>& q = queues_[size_t(lane)];
    T item = std::move(q.front());
    q.pop_front();
    return std::make_pair(lane, std::move(item));
  }

  size_t capacity_;
  std::vector<LaneConfig> configs_;   // fixed at construction
  std::vector<std::deque<T>> queues_;  // index-aligned with configs_
  int cursor_ = 0;        // lane whose turn it is
  uint32_t budget_ = 0;   // pops the turn lane may still take
};

}  // namespace adj::serve

#endif  // ADJ_SERVE_ADMISSION_QUEUE_H_
