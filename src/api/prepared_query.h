#ifndef ADJ_API_PREPARED_QUERY_H_
#define ADJ_API_PREPARED_QUERY_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>

#include "api/result.h"
#include "core/engine.h"
#include "core/options.h"
#include "query/query.h"

namespace adj::api {

/// A query planned once and executable many times — the serving
/// pattern the facade exists for. Session::Prepare runs ADJ's full
/// planning stage (GHD search, sampling, Alg. 2), pushes equality
/// selections down into a private reduced catalog, and builds the
/// plan's ExecutionContext up front: base relations aliased (shared,
/// never copied) into the execution catalog and the plan's
/// pre-computed bags materialized exactly once. Run() then only
/// executes the final one-round join — no re-planning, no
/// base-relation copies, no bag re-materialization — so repeated
/// execution is O(query), not O(dataset). The one-time planning and
/// pre-computation costs are charged to the first successful Run()
/// (optimize_s / precompute_s) so totals stay honest; every later run
/// — including runs of copies, which share the charge — reports both
/// as 0.
///
/// Proper projections are not supported (Prepare fails); prepared
/// queries always execute under ADJ co-optimization, which is the only
/// strategy with a plan to cache.
///
/// Not thread-safe — use one PreparedQuery per client thread (they are
/// copyable, and copies share the reduced catalog).
class PreparedQuery {
 public:
  /// An unprepared query; Run() fails. Exists so StatusOr/containers
  /// can hold PreparedQuery — real instances come from
  /// Session::Prepare.
  PreparedQuery() = default;

  /// The (selection-rewritten) join body the cached plan executes.
  const query::Query& query() const { return query_; }

  /// EXPLAIN-style rendering of the cached plan (hypertree, traversal,
  /// per-node estimates, predicted costs).
  const std::string& explanation() const { return planned_.explanation; }

  /// One-time planning cost paid at Prepare time (plan search +
  /// sampling, wall clock). 0 after Session::Reprepare — a refresh
  /// reuses the stored plan instead of searching again.
  double planning_seconds() const { return planned_.optimize_s; }

  /// The catalog relations this plan reads, each with the
  /// relation_version() it was prepared against — the plan's freshness
  /// certificate. The plan remains valid exactly as long as every
  /// listed name still has its listed version; a write to any other
  /// relation cannot stale it. serve::PreparedQueryCache validates
  /// entries against this map (per-relation, not per-generation), and
  /// Session::Reprepare uses the mismatched names to refresh only the
  /// delta-proportional part of the context.
  const std::map<std::string, uint64_t>& dependency_versions() const {
    return dep_versions_;
  }

  /// Memory this prepared query keeps resident between runs as
  /// measured at Prepare time: the bound-atom index artifacts its
  /// ExecutionContext pins plus its materialized bag relations. What
  /// serve::PreparedQueryCache charges against its byte budget.
  /// Copies share the context, so they report (and cost) the same
  /// bytes once. NOT included: the per-server shard artifacts the
  /// first Run() builds into the shared storage::IndexCache — those
  /// are accounted (and LRU-evictable when idle) under the index
  /// cache's own budget (serve::ServerOptions::index_cache_budget_bytes).
  uint64_t resident_bytes() const {
    return ctx_ != nullptr ? ctx_->ResidentBytes() : 0;
  }

  /// Executes the cached plan against the session's catalog, under the
  /// engine options snapshotted at Prepare time.
  Result Run();

  /// Same, but with `limits` overriding the snapshot's
  /// wcoj::JoinLimits for this run only — how a serving layer maps a
  /// per-request deadline or memory budget onto a shared cached plan
  /// (serve::Server sets limits.max_seconds to the request's remaining
  /// deadline). The plan itself is unaffected; limit trips surface as
  /// DeadlineExceeded / ResourceExhausted in the Result.
  Result Run(const wcoj::JoinLimits& limits);

 private:
  Result RunWithOptions(const core::EngineOptions& options);

  friend class Session;

  PreparedQuery(core::SpjQuery spj, query::Query query,
                uint64_t selection_filtered,
                std::map<std::string, uint64_t> dep_versions,
                core::PlanResult planned,
                std::shared_ptr<const core::ExecutionContext> ctx,
                core::EngineOptions options)
      : spj_(std::move(spj)),
        query_(std::move(query)),
        selection_filtered_(selection_filtered),
        dep_versions_(std::move(dep_versions)),
        planned_(std::move(planned)),
        ctx_(std::move(ctx)),
        options_(std::move(options)),
        prepared_(true) {}

  // The original parsed SPJ query (pre-push-down) — what Reprepare
  // re-pushes selections from after a write.
  core::SpjQuery spj_;
  query::Query query_;
  uint64_t selection_filtered_ = 0;
  // Source-catalog relation name -> relation_version() at Prepare.
  std::map<std::string, uint64_t> dep_versions_;
  core::PlanResult planned_;
  // Built once at Prepare time and shared across copies: everything a
  // run needs — the execution catalog's aliased entries co-own their
  // relations, so no separate catalog handle is kept. Read-only, so
  // concurrent runs of copies are safe.
  std::shared_ptr<const core::ExecutionContext> ctx_;
  core::EngineOptions options_;  // snapshot of the session's options
  bool prepared_ = false;
  // Shared across copies so the one-time planning + pre-computation
  // cost is charged to exactly one run no matter which copy executes
  // first.
  std::shared_ptr<std::atomic<bool>> planning_charged_ =
      std::make_shared<std::atomic<bool>>(false);
};

}  // namespace adj::api

#endif  // ADJ_API_PREPARED_QUERY_H_
