#ifndef ADJ_API_API_H_
#define ADJ_API_API_H_

/// The library's public facade — include this one header to serve
/// queries (snippets elide error handling; check .ok() on every
/// StatusOr before dereferencing):
///
///   api::Database db = *api::Database::OpenBuiltin("LJ", 0.2);
///   api::Session session = db.OpenSession();
///   session.options().cluster.num_servers = 8;
///
///   api::Result r = session.Run("G(a,b) G(b,c) G(a,c)");   // ADJ
///   api::Result h = session.Run("G(a,b) G(b,c)", "HCubeJ");
///
///   api::PreparedQuery q = *session.Prepare("G(a,b) G(b,c) G(a,c)");
///   q.Run();  // plans once …
///   q.Run();  // … re-executes with optimize_s = 0
///
/// New execution strategies plug in by name through
/// core::StrategyRegistry::Global().Register(...) without touching the
/// core::Strategy enum; Session::RunBatch fans a vector of queries out
/// over a thread pool against the shared read-only catalog.
///
/// To serve these queries to many clients from one long-lived process
/// — with a prepared-plan cache, admission control, and per-request
/// deadlines — layer serve::Server on top: "serve/serve.h"
/// (docs/SERVING.md).
#include "api/database.h"
#include "api/prepared_query.h"
#include "api/result.h"
#include "api/session.h"

#endif  // ADJ_API_API_H_
