#ifndef ADJ_API_SESSION_H_
#define ADJ_API_SESSION_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/prepared_query.h"
#include "api/result.h"
#include "core/options.h"
#include "query/query.h"
#include "storage/catalog.h"

namespace adj::api {

/// One query of a Session::RunBatch call.
struct BatchQuery {
  std::string text;      // SPJ query text, as for Session::Run
  std::string strategy;  // empty → the session's default strategy
};

/// A client's handle for issuing queries against a Database: carries
/// the per-client default EngineOptions (cluster size, sampling
/// budget, limits) and default strategy. Cheap to create — open one
/// per client.
///
/// Thread-safety: the const methods (Run, Prepare, RunBatch) only
/// read the shared catalog (and keep it alive), so any number of
/// sessions — and concurrent calls on *one* session — execute safely
/// in parallel; serve::Server relies on this, Prepare()ing on several
/// workers at once. The mutators (options(), set_default_strategy)
/// are for setup: configure before issuing queries, not while a
/// RunBatch or another thread's call is in flight.
///
/// Error folding: Run and RunBatch never fail out-of-band — every
/// outcome, setup error or per-run failure, arrives folded into an
/// api::Result (see Result). Only Prepare returns StatusOr, because
/// there is no PreparedQuery to hand back when planning fails.
class Session {
 public:
  explicit Session(std::shared_ptr<const storage::Catalog> db)
      : db_(std::move(db)) {}

  /// The session's default engine options, applied to every query it
  /// issues (including prepared ones, snapshotted at Prepare time).
  core::EngineOptions& options() { return options_; }
  const core::EngineOptions& options() const { return options_; }

  /// Default strategy for calls that don't name one — any
  /// core::StrategyRegistry name ("ADJ" initially).
  void set_default_strategy(std::string name) {
    default_strategy_ = std::move(name);
  }
  const std::string& default_strategy() const { return default_strategy_; }

  /// Parses and executes SPJ text, e.g. "G(a,b) G(b,c) | b=3 | a".
  /// Queries with a proper projection must materialize output and
  /// always execute via the one-round HCubeJ collector regardless of
  /// `strategy` (Result::strategy() reports the executor actually
  /// used); see core::RunSpj.
  Result Run(const std::string& query_text) const {
    return Run(query_text, default_strategy_);
  }
  Result Run(const std::string& query_text,
             const std::string& strategy) const;

  /// Executes an already-parsed natural-join query.
  Result Run(const query::Query& q, const std::string& strategy) const;

  /// Plans `query_text` once (ADJ planning + selection push-down) for
  /// repeated execution — see PreparedQuery.
  StatusOr<PreparedQuery> Prepare(const std::string& query_text) const;

  /// True iff every relation `prepared` reads still has the version it
  /// was prepared against — i.e. no write since Prepare can affect its
  /// answer. Writes to relations the query does not read never stale
  /// it.
  bool IsFresh(const PreparedQuery& prepared) const;

  /// Refreshes a prepared query staled by writes, at delta cost
  /// instead of plan cost: the stored plan is reused verbatim (no GHD
  /// search, no sampling — planning_seconds() is 0 on the result), the
  /// selection push-down re-scans only the written relations, bags fed
  /// exclusively by unchanged relations are aliased from the stale
  /// context, and index binds against the written relations resolve by
  /// delta-patching their cached artifacts (Result::index_patched)
  /// rather than rebuilding. If `prepared` is already fresh, returns a
  /// copy of it unchanged. The refreshed query re-pins its indexes at
  /// the current relation versions, so its dependency_versions() map
  /// is current.
  StatusOr<PreparedQuery> Reprepare(const PreparedQuery& prepared) const;

  /// Executes `queries` concurrently over a dist::ThreadPool against
  /// the shared read-only catalog; the returned vector aligns
  /// index-wise with `queries` (failures folded into each Result).
  /// threads <= 0 picks min(#queries, hardware threads).
  std::vector<Result> RunBatch(const std::vector<BatchQuery>& queries,
                               int threads = 0) const;

 private:
  std::shared_ptr<const storage::Catalog> db_;
  core::EngineOptions options_;
  std::string default_strategy_ = "ADJ";
};

}  // namespace adj::api

#endif  // ADJ_API_SESSION_H_
