#ifndef ADJ_API_DATABASE_H_
#define ADJ_API_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace adj::api {

class Session;

/// The facade's entry point: owns the catalog and hands out sessions.
/// Load-then-serve lifecycle — load relations up front (builtin
/// datasets by name, SNAP edge lists from disk, or relations built in
/// memory), then open any number of sessions. Sessions share the
/// catalog read-only and keep it alive, so they may outlive the
/// Database.
///
/// Thread-safety: const access (catalog reads, OpenSession, running
/// queries through sessions) is safe from any number of threads,
/// because everything reachable through the catalog is immutable. The
/// load methods are the only writers: loading while any session or
/// server is executing queries is a data race — quiesce first
/// (serve::Server::Drain, or simply don't run queries concurrently
/// with loads). Every load bumps generation(), which is how plan
/// caches detect that their entries went stale across a reload.
class Database {
 public:
  Database() : catalog_(std::make_shared<storage::Catalog>()) {}

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// One-liner for the common case: the named builtin dataset (the
  /// Table I stand-ins WB/AS/WT/LJ/EN/OK) loaded as relation "G".
  static StatusOr<Database> OpenBuiltin(const std::string& dataset,
                                        double scale = 1.0);

  /// Generates builtin dataset `dataset` and registers it as `as`.
  Status LoadBuiltin(const std::string& dataset, double scale = 1.0,
                     const std::string& as = "G");

  /// Loads a SNAP-format text edge list and registers it as `as`.
  Status LoadEdgeList(const std::string& path, const std::string& as = "G");

  /// Registers an already-built relation (replacing any previous
  /// binding of `name`).
  void AddRelation(const std::string& name, storage::Relation rel);

  /// Serializes the catalog into a versioned, checksummed snapshot:
  /// every relation plus every resident permuted-index artifact of
  /// the index cache, each written raw (mmap-able) and compressed.
  /// Atomic (temp file + rename); overwrites `path`.
  Status Save(const std::string& path) const;

  /// Restores a snapshot written by Save into this database: verifies
  /// header/TOC/segment checksums, then maps the file and registers
  /// relations and warm indexes that *view the mapped bytes in place*
  /// — no parsing, no trie builds; a prepared query right after Open
  /// binds mmap-loaded indexes (see Result::index_mmap_loaded).
  /// Registering bumps generation() exactly like any other reload, so
  /// serve-layer plan caches invalidate correctly. Snapshot contents
  /// are added to (and replace same-named entries of) the current
  /// catalog. Corrupt or incompatible files fail with a Status error
  /// and leave the catalog untouched.
  Status Open(const std::string& path);

  const storage::Catalog& catalog() const { return *catalog_; }
  std::vector<std::string> relation_names() const;
  uint64_t total_tuples() const;

  /// The catalog's mutation counter — bumped by every load/add above.
  /// Plans and ExecutionContexts built while generation() == g remain
  /// valid exactly as long as it still equals g (see
  /// storage::Catalog::generation and serve::PreparedQueryCache).
  uint64_t generation() const { return catalog_->generation(); }

  /// A session with default options; customize via Session::options().
  Session OpenSession() const;

 private:
  std::shared_ptr<storage::Catalog> catalog_;
};

}  // namespace adj::api

#endif  // ADJ_API_DATABASE_H_
