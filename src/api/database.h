#ifndef ADJ_API_DATABASE_H_
#define ADJ_API_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/catalog.h"
#include "storage/relation.h"

namespace adj::api {

class Session;

/// The facade's entry point: owns the catalog and hands out sessions.
/// Load-then-serve lifecycle — load relations up front (builtin
/// datasets by name, SNAP edge lists from disk, or relations built in
/// memory), then open any number of sessions. Sessions share the
/// catalog read-only and keep it alive, so they may outlive the
/// Database.
///
/// Thread-safety: const access (catalog reads, OpenSession, running
/// queries through sessions) is safe from any number of threads,
/// because everything reachable through the catalog is immutable. The
/// load methods and Apply are the writers: writing while any session
/// or server is executing queries is a data race — quiesce first
/// (serve::Server::Apply does this with a reader/writer lock; outside
/// a server, simply don't run queries concurrently with writes). Every
/// write advances the touched relations' relation_version()s (and the
/// coarse generation()), which is how plan caches detect exactly which
/// entries went stale.
class Database {
 public:
  Database() : catalog_(std::make_shared<storage::Catalog>()) {}

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// One-liner for the common case: the named builtin dataset (the
  /// Table I stand-ins WB/AS/WT/LJ/EN/OK) loaded as relation "G".
  static StatusOr<Database> OpenBuiltin(const std::string& dataset,
                                        double scale = 1.0);

  /// Generates builtin dataset `dataset` and registers it as `as`.
  Status LoadBuiltin(const std::string& dataset, double scale = 1.0,
                     const std::string& as = "G");

  /// Loads a SNAP-format text edge list and registers it as `as`.
  Status LoadEdgeList(const std::string& path, const std::string& as = "G");

  /// Registers an already-built relation (replacing any previous
  /// binding of `name`). Equivalent to a one-op WriteBatch with
  /// Create(name, rel) — prefer Apply for anything beyond a single
  /// full replacement.
  void AddRelation(const std::string& name, storage::Relation rel);

  /// The write API: applies `batch` — tuple inserts, tombstones, full
  /// creates, aliases — atomically. Validation happens before any
  /// mutation, so a failed Apply leaves the database untouched; on
  /// success every touched relation's relation_version() advances and
  /// untouched relations (and every index and prepared plan bound to
  /// them) stay exactly as they were. Tuple writes land as delta
  /// batches on the relation's immutable base: readers see the merged
  /// ("effective") relation immediately, while cached indexes of the
  /// pre-write version are delta-patched on their next bind instead of
  /// rebuilt (see storage::Catalog and docs/UPDATES.md).
  ///
  /// Thread-safety matches the load methods: Apply is a writer — do
  /// not run it concurrently with query execution. serve::Server::Apply
  /// is the synchronized form for a live server.
  Status Apply(const storage::WriteBatch& batch) {
    return catalog_->Apply(batch);
  }

  /// Accumulated delta rows at which a written relation folds its
  /// pending chain into a new base (storage::Catalog compaction,
  /// default 4096). A write-workload tuning knob: lower trades merge
  /// work on reads for more frequent O(base) folds.
  void set_delta_compact_threshold(uint64_t rows) {
    catalog_->set_delta_compact_threshold(rows);
  }

  /// Serializes the catalog into a versioned, checksummed snapshot:
  /// every relation plus every resident permuted-index artifact of
  /// the index cache, each written raw (mmap-able) and compressed.
  /// Atomic (temp file + rename); overwrites `path`.
  Status Save(const std::string& path) const;

  /// Restores a snapshot written by Save into this database: verifies
  /// header/TOC/segment checksums, then maps the file and registers
  /// relations and warm indexes that *view the mapped bytes in place*
  /// — no parsing, no trie builds; a prepared query right after Open
  /// binds mmap-loaded indexes (see Result::index_mmap_loaded).
  /// Registering bumps generation() exactly like any other reload, so
  /// serve-layer plan caches invalidate correctly. Snapshot contents
  /// are added to (and replace same-named entries of) the current
  /// catalog. Corrupt or incompatible files fail with a Status error
  /// and leave the catalog untouched.
  Status Open(const std::string& path);

  const storage::Catalog& catalog() const { return *catalog_; }
  std::vector<std::string> relation_names() const;
  uint64_t total_tuples() const;

  /// The catalog's coarse mutation counter — bumped by every load/add/
  /// Apply above. Kept for whole-catalog observers; per-relation
  /// staleness questions should use relation_version() instead, which
  /// is what lets caches survive writes to relations they don't read.
  uint64_t generation() const { return catalog_->generation(); }

  /// The version of `name`'s current binding (0 if absent): advances
  /// exactly when a write changes the relation's content or rebinds
  /// the name. A prepared plan is fresh iff every relation it reads
  /// still has the version it was prepared at (see
  /// PreparedQuery::dependency_versions and serve::PreparedQueryCache).
  uint64_t relation_version(const std::string& name) const {
    return catalog_->VersionOf(name);
  }

  /// A session with default options; customize via Session::options().
  Session OpenSession() const;

 private:
  std::shared_ptr<storage::Catalog> catalog_;
};

}  // namespace adj::api

#endif  // ADJ_API_DATABASE_H_
