#include "api/session.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <thread>

#include "core/engine.h"
#include "core/spj.h"
#include "dist/thread_pool.h"
#include "wcoj/intersect.h"

namespace adj::api {

Result Session::Run(const std::string& query_text,
                    const std::string& strategy) const {
  StatusOr<core::SpjQuery> spj = core::ParseSpj(query_text);
  if (!spj.ok()) return Result(spj.status());
  StatusOr<core::SpjResult> run = core::RunSpj(*db_, *spj, strategy, options_);
  if (!run.ok()) return Result(run.status());
  return Result(std::move(run.value()));
}

Result Session::Run(const query::Query& q,
                    const std::string& strategy) const {
  core::Engine engine(db_.get());
  StatusOr<exec::RunReport> report = engine.Run(q, strategy, options_);
  if (!report.ok()) return Result(report.status());
  core::SpjResult run;
  run.report = std::move(report.value());
  run.projected_count = run.report.output_count;
  return Result(std::move(run));
}

StatusOr<PreparedQuery> Session::Prepare(const std::string& query_text) const {
  StatusOr<core::SpjQuery> spj = core::ParseSpj(query_text);
  if (!spj.ok()) return spj.status();
  if (spj->HasProperProjection()) {
    return Status::InvalidArgument(
        "prepared queries do not support proper projections yet; "
        "run the projecting query through Session::Run");
  }

  // The plan's freshness certificate: every relation the query reads,
  // at the version it has right now. A later write bumps the touched
  // names' versions, which is how caches (and Reprepare) see exactly
  // which prepared queries it staled.
  std::map<std::string, uint64_t> deps;
  for (int i = 0; i < spj->join.num_atoms(); ++i) {
    const std::string& name = spj->join.atom(i).relation;
    deps[name] = db_->VersionOf(name);
  }

  // Selections are pushed down once, here, into a catalog the prepared
  // query owns — every later Run() starts from the reduced database.
  std::shared_ptr<const storage::Catalog> db = db_;
  query::Query join = spj->join;
  uint64_t filtered = 0;
  if (!spj->selections.empty()) {
    StatusOr<core::PushedDown> pushed = core::PushDownSelections(*db_, *spj);
    if (!pushed.ok()) return pushed.status();
    filtered = pushed->filtered;
    join = std::move(pushed->query);
    db = std::make_shared<const storage::Catalog>(std::move(pushed->catalog));
  }

  core::Engine engine(db.get());
  StatusOr<core::PlanResult> planned = engine.Plan(join, options_);
  if (!planned.ok()) return planned.status();

  // Build the execution context now — base relations aliased into the
  // execution catalog, pre-computed bags materialized once — so every
  // Run() is just the final join round. A bag-materialization failure
  // (memory/time limits) is a per-run failure and stays folded into
  // the runs' Results, matching direct execution.
  StatusOr<core::ExecutionContext> ctx =
      engine.PrepareExecution(join, planned->plan, options_);
  if (!ctx.ok()) return ctx.status();
  // Surface the pinned-index footprint in the EXPLAIN rendering: the
  // artifacts below stay resident in the shared index cache, so every
  // run binds without building (the per-server shard artifacts are
  // built once, by the first run).
  size_t mmap_loaded = 0;
  size_t compressed = 0;
  uint64_t compressed_bytes = 0;
  std::set<const storage::Trie*> counted_tries;
  for (const auto& index : ctx->pinned_indexes) {
    if (index == nullptr || index->trie == nullptr) continue;
    if (index->trie->mmap_backed()) ++mmap_loaded;
    if (index->trie->any_compressed() &&
        counted_tries.insert(index->trie.get()).second) {
      ++compressed;
      compressed_bytes += index->trie->CompressedBytes();
    }
  }
  planned->explanation +=
      "pinned indexes: " + std::to_string(ctx->pinned_indexes.size()) +
      " (" + std::to_string(mmap_loaded) + " mmap-loaded from snapshot, " +
      std::to_string(ctx->ResidentBytes()) +
      " bytes resident; every run binds prebuilt, shard indexes build "
      "once on the first run)\n";
  if (compressed > 0) {
    planned->explanation +=
        "compressed tries: " + std::to_string(compressed) + " (" +
        std::to_string(compressed_bytes) +
        " bytes encoded; kernels intersect blocks directly via the "
        "skip table)\n";
  }
  planned->explanation +=
      std::string("intersection kernel: ") +
      wcoj::intersect::KernelName(wcoj::intersect::ActiveKernel()) +
      " (runtime CPU dispatch; join loops run allocation-free out of a "
      "per-executor arena)\n";
  return PreparedQuery(
      std::move(spj.value()), std::move(join), filtered, std::move(deps),
      std::move(planned.value()),
      std::make_shared<const core::ExecutionContext>(std::move(ctx.value())),
      options_);
}

bool Session::IsFresh(const PreparedQuery& prepared) const {
  for (const auto& [name, version] : prepared.dep_versions_) {
    if (db_->VersionOf(name) != version) return false;
  }
  return true;
}

StatusOr<PreparedQuery> Session::Reprepare(const PreparedQuery& stale) const {
  if (!stale.prepared_) {
    return Status::InvalidArgument(
        "cannot reprepare a default-constructed PreparedQuery");
  }
  // Which of the plan's dependencies moved since it was prepared?
  std::set<std::string> changed;
  std::map<std::string, uint64_t> deps;
  for (const auto& [name, version] : stale.dep_versions_) {
    const uint64_t now = db_->VersionOf(name);
    deps[name] = now;
    if (now != version) changed.insert(name);
  }
  if (changed.empty()) return stale;  // still fresh — share everything

  // Re-push selections, re-scanning only the written relations; the
  // untouched atoms' filtered copies are aliased from the stale
  // context so their cached indexes keep binding by identity.
  const core::SpjQuery& spj = stale.spj_;
  std::shared_ptr<const storage::Catalog> db = db_;
  query::Query join = spj.join;
  uint64_t filtered = 0;
  if (!spj.selections.empty()) {
    core::PushDownReuse push_reuse;
    push_reuse.prev = stale.ctx_ != nullptr ? &stale.ctx_->db : nullptr;
    push_reuse.changed = &changed;
    StatusOr<core::PushedDown> pushed =
        core::PushDownSelections(*db_, spj, &push_reuse);
    if (!pushed.ok()) return pushed.status();
    filtered = pushed->filtered;
    join = std::move(pushed->query);
    db = std::make_shared<const storage::Catalog>(std::move(pushed->catalog));
  }

  // Rebuild the execution context under the *stored* plan — no GHD
  // search, no sampling. Bags fed only by unchanged relations are
  // aliased from the stale context; the changed names (mapped through
  // the push-down rename, which the rewritten join preserves
  // atom-by-atom) force re-materialization of exactly the bags the
  // write feeds.
  core::Engine::PrepareReuse reuse;
  reuse.prev = stale.ctx_.get();
  for (int i = 0; i < spj.join.num_atoms(); ++i) {
    if (changed.count(spj.join.atom(i).relation) > 0) {
      reuse.changed.insert(join.atom(i).relation);
    }
  }

  core::Engine engine(db.get());
  core::PlanResult planned = stale.planned_;  // the plan is reused verbatim
  planned.optimize_s = 0.0;
  StatusOr<core::ExecutionContext> ctx =
      engine.PrepareExecution(join, planned.plan, stale.options_, &reuse);
  if (!ctx.ok()) return ctx.status();
  planned.explanation +=
      "reprepared: " + std::to_string(changed.size()) +
      " changed relation(s); plan reused, unchanged bags aliased, "
      "changed-relation indexes refresh by delta patching\n";
  return PreparedQuery(
      spj, std::move(join), filtered, std::move(deps), std::move(planned),
      std::make_shared<const core::ExecutionContext>(std::move(ctx.value())),
      stale.options_);
}

std::vector<Result> Session::RunBatch(const std::vector<BatchQuery>& queries,
                                      int threads) const {
  std::vector<Result> results(queries.size());
  if (queries.empty()) return results;
  if (threads <= 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = int(std::min<size_t>(queries.size(), hw > 0 ? hw : 4));
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    tasks.push_back([this, &queries, &results, i] {
      const BatchQuery& bq = queries[i];
      results[i] =
          Run(bq.text, bq.strategy.empty() ? default_strategy_ : bq.strategy);
    });
  }
  dist::RunTasks(threads, tasks);
  return results;
}

}  // namespace adj::api
