#ifndef ADJ_API_RESULT_H_
#define ADJ_API_RESULT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/spj.h"
#include "exec/run_report.h"

namespace adj::api {

/// Outcome of one query executed through the facade. Failures are
/// folded in rather than wrapped in StatusOr: a Result always exists,
/// ok() says whether the run produced an answer, and status() carries
/// the error either way — to a serving client, a setup error (unknown
/// relation, malformed query, unknown strategy) and a per-run failure
/// (memory overflow, timeout) are both "this query did not answer".
/// The status *code* still distinguishes them: InvalidArgument /
/// NotFound for setup, ResourceExhausted (memory budget) and
/// DeadlineExceeded (time budget / request deadline) for per-run.
///
/// Cost accessors report the paper's breakdown. optimize_seconds and
/// precompute_seconds are one-time costs: on a prepared (or
/// server-cached) query they are charged to the first successful run
/// only — a 0 there means the plan was reused, not that planning was
/// free (see PreparedQuery and serve::Server).
///
/// Thread-safety: an immutable value once constructed; share freely.
class Result {
 public:
  /// An empty, failed result (what RunBatch slots hold before a worker
  /// fills them).
  Result() : Result(Status::Internal("empty result")) {}
  /// A result that failed before execution.
  explicit Result(Status error) : status_(std::move(error)) {}
  /// A completed run; per-run failures are lifted out of the report.
  explicit Result(core::SpjResult run)
      : status_(run.report.status), run_(std::move(run)) {}

  /// A planning failure with the planning time it burned attributed:
  /// status() carries the error (typically DeadlineExceeded from an
  /// exhausted planning budget) and optimize_seconds() reports the
  /// partial planning cost — a failed cold miss is not free, and the
  /// serve layer surfaces what it cost even though no run happened.
  static Result PlanningFailure(Status error, double planning_seconds) {
    Result r(std::move(error));
    r.run_.report.optimize_s = planning_seconds;
    return r;
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Number of output tuples (distinct projected tuples when the query
  /// projects). 0 on failure.
  uint64_t count() const { return ok() ? run_.projected_count : 0; }

  /// Tuples removed from base relations by selection push-down.
  uint64_t selection_filtered() const { return run_.pushed_down_filtered; }

  /// Strategy that produced the result ("ADJ", "HCubeJ", ...); empty
  /// if the run never started.
  const std::string& strategy() const { return run_.report.method; }

  /// Paper-style cost breakdown, in (modeled + measured) seconds.
  double total_seconds() const { return run_.report.TotalSeconds(); }
  double optimize_seconds() const { return run_.report.optimize_s; }
  double precompute_seconds() const { return run_.report.precompute_s; }
  double communication_seconds() const { return run_.report.comm_s; }
  double computation_seconds() const { return run_.report.comp_s; }

  /// Shared-index-layer accounting for this run: artifacts built vs.
  /// borrowed from the cache. A prepared (or server-cached) query
  /// reports index_builds() == 0 from its second run on — the
  /// observable "no per-run rebuild" guarantee.
  uint64_t index_builds() const { return run_.report.index_builds; }
  uint64_t index_reused() const { return run_.report.index_reused; }
  /// Of index_reused(), how many bindings were served by indexes
  /// mmap-loaded from a snapshot (api::Database::Open) instead of
  /// built in this process — nonzero right after a warm restart.
  uint64_t index_mmap_loaded() const { return run_.report.index_mmap; }
  /// Write provenance: bindings served by delta-patching a cached
  /// index of the pre-write relation version instead of rebuilding it,
  /// and how many delta rows those patches merged. After a
  /// single-relation write, a reprepared query's run reports
  /// index_builds() == 0 with index_patched() > 0 — writes cost
  /// delta-proportional merge work, never a rebuild (docs/UPDATES.md).
  uint64_t index_patched() const { return run_.report.index_patched; }
  uint64_t delta_rows_merged() const { return run_.report.delta_rows_merged; }

  /// Intersection-kernel accounting for this run: 2-way intersections
  /// served by a SIMD kernel (SSE4.2/AVX2) vs the scalar galloping
  /// baseline. scalar_fallbacks() > 0 on SIMD-capable hardware means
  /// dispatch was forced off (or the build lacks the intrinsics).
  uint64_t simd_intersections() const {
    return run_.report.simd_intersections;
  }
  uint64_t scalar_fallbacks() const { return run_.report.scalar_fallbacks; }

  /// Compressed-storage accounting: resident bytes of block-compressed
  /// trie levels across the distinct indexes this run bound (0 when
  /// the bound tries are all raw), and how many compressed blocks the
  /// kernels decoded into scratch while joining.
  uint64_t compressed_bytes() const { return run_.report.compressed_bytes; }
  uint64_t blocks_decoded() const { return run_.report.blocks_decoded; }

  /// Full underlying execution report (shuffle volumes, per-level
  /// intermediate counts, plan description).
  const exec::RunReport& report() const { return run_.report; }

  /// Stable one-line rendering:
  ///   "count=N strategy=S total=T.TTTs (opt=.. pre=.. comm=.. comp=..)"
  /// or "error: <status>".
  std::string ToString() const;

 private:
  Status status_;
  core::SpjResult run_;
};

}  // namespace adj::api

#endif  // ADJ_API_RESULT_H_
