#include "api/result.h"

#include <cstdio>

namespace adj::api {

std::string Result::ToString() const {
  if (!ok()) {
    std::string out = "error: " + status_.ToString();
    if (optimize_seconds() > 0) {
      // Partial planning cost attributed to a failure (see
      // PlanningFailure) — render it so a blown budget is visible.
      char burned[48];
      std::snprintf(burned, sizeof(burned), " (planning burned %.3fs)",
                    optimize_seconds());
      out += burned;
    }
    return out;
  }
  // Strategy names are arbitrary (runtime-registered), so only the
  // fixed-width numeric tail goes through the stack buffer.
  char costs[128];
  std::snprintf(costs, sizeof(costs),
                " total=%.3fs (opt=%.3f pre=%.3f comm=%.3f comp=%.3f)",
                total_seconds(), optimize_seconds(), precompute_seconds(),
                communication_seconds(), computation_seconds());
  return "count=" + std::to_string(count()) + " strategy=" + strategy() +
         costs;
}

}  // namespace adj::api
