#include "api/prepared_query.h"

namespace adj::api {

Result PreparedQuery::Run() { return RunWithOptions(options_); }

Result PreparedQuery::Run(const wcoj::JoinLimits& limits) {
  core::EngineOptions options = options_;
  options.limits = limits;
  return RunWithOptions(options);
}

Result PreparedQuery::RunWithOptions(const core::EngineOptions& options) {
  if (!prepared_) {
    return Result(Status::Internal("empty prepared query (default "
                                   "constructed; use Session::Prepare)"));
  }
  core::Engine engine(&ctx_->db);
  StatusOr<exec::RunReport> report = engine.RunPrepared(*ctx_, options);
  if (!report.ok()) return Result(report.status());
  if (report->ok() && !planning_charged_->exchange(true)) {
    report->optimize_s = planned_.optimize_s;
    ctx_->ChargePrecompute(&report.value());
  }
  core::SpjResult run;
  run.report = std::move(report.value());
  run.projected_count = run.report.output_count;
  run.pushed_down_filtered = selection_filtered_;
  return Result(std::move(run));
}

}  // namespace adj::api
