#include "api/database.h"

#include <utility>

#include "api/session.h"
#include "dataset/builtin.h"
#include "persist/snapshot.h"
#include "storage/edge_list_io.h"

namespace adj::api {

StatusOr<Database> Database::OpenBuiltin(const std::string& dataset,
                                         double scale) {
  Database db;
  ADJ_RETURN_IF_ERROR(db.LoadBuiltin(dataset, scale));
  return db;
}

Status Database::LoadBuiltin(const std::string& dataset, double scale,
                             const std::string& as) {
  StatusOr<storage::Relation> rel = dataset::MakeBuiltin(dataset, scale);
  if (!rel.ok()) return rel.status();
  catalog_->Put(as, std::move(rel.value()));
  return Status::OK();
}

Status Database::LoadEdgeList(const std::string& path,
                              const std::string& as) {
  StatusOr<storage::Relation> rel = storage::LoadEdgeList(path);
  if (!rel.ok()) return rel.status();
  catalog_->Put(as, std::move(rel.value()));
  return Status::OK();
}

void Database::AddRelation(const std::string& name, storage::Relation rel) {
  catalog_->Put(name, std::move(rel));
}

Status Database::Save(const std::string& path) const {
  StatusOr<persist::WriteStats> stats =
      persist::SnapshotWriter::Write(*catalog_, path);
  return stats.ok() ? Status::OK() : stats.status();
}

Status Database::Open(const std::string& path) {
  StatusOr<persist::SnapshotReader> reader = persist::SnapshotReader::Open(path);
  if (!reader.ok()) return reader.status();
  // Full-file integrity before any bytes are trusted: every segment's
  // checksum (one sequential pass) — a flipped bit anywhere fails here.
  ADJ_RETURN_IF_ERROR(reader->VerifyChecksums());
  StatusOr<persist::SnapshotReader::LoadStats> loaded =
      reader->LoadInto(catalog_.get());
  return loaded.ok() ? Status::OK() : loaded.status();
}

std::vector<std::string> Database::relation_names() const {
  return catalog_->Names();
}

uint64_t Database::total_tuples() const { return catalog_->TotalTuples(); }

Session Database::OpenSession() const {
  return Session(std::shared_ptr<const storage::Catalog>(catalog_));
}

}  // namespace adj::api
